//! Protocol message types.
//!
//! Operations fall into the three categories the architecture defines:
//! *registry network maintenance*, *publishing*, and *querying*. The service
//! description payload sits behind a [`ModelId`] next-header so the same
//! distribution protocol carries every description model.

use sds_semantic::{ClassId, Degree, ServiceProfile, ServiceRequest};
use sds_simnet::{NodeId, SimTime};

use crate::uuid::Uuid;

/// Identifies a published advertisement across the whole system.
pub type AdvertId = Uuid;

/// The "next header" field: which description model a payload uses.
///
/// Nodes that do not implement a model "quickly filter and silently discard
/// messages they cannot understand anyway".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelId {
    /// Pre-agreed service-type URI — the WS-Discovery-class simple model.
    Uri,
    /// Partial template over (name, type, attributes) — the UDDI-class model.
    Template,
    /// Semantic profile over a shared ontology — the OWL-S-class model.
    Semantic,
}

impl ModelId {
    pub const ALL: [ModelId; 3] = [ModelId::Uri, ModelId::Template, ModelId::Semantic];

    pub fn wire_tag(self) -> u8 {
        match self {
            ModelId::Uri => 0,
            ModelId::Template => 1,
            ModelId::Semantic => 2,
        }
    }

    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ModelId::Uri),
            1 => Some(ModelId::Template),
            2 => Some(ModelId::Semantic),
            _ => None,
        }
    }
}

/// A name/type/attribute template, used both as a full description and (with
/// unset fields as wildcards) as a query form — "filling out a partial
/// template for the service wanted".
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DescriptionTemplate {
    pub name: Option<String>,
    pub type_uri: Option<String>,
    pub attrs: Vec<(String, String)>,
}

impl DescriptionTemplate {
    /// Template query semantics: every bound field of `query` must equal the
    /// corresponding field here, and every query attribute must be present
    /// with the same value.
    pub fn matches(&self, query: &DescriptionTemplate) -> bool {
        if let Some(n) = &query.name {
            if self.name.as_ref() != Some(n) {
                return false;
            }
        }
        if let Some(t) = &query.type_uri {
            if self.type_uri.as_ref() != Some(t) {
                return false;
            }
        }
        query
            .attrs
            .iter()
            .all(|(k, v)| self.attrs.iter().any(|(ak, av)| ak == k && av == v))
    }
}

/// A service description in one of the pluggable models.
#[derive(Clone, PartialEq, Debug)]
pub enum Description {
    Uri(String),
    Template(DescriptionTemplate),
    Semantic(ServiceProfile),
}

impl Description {
    pub fn model(&self) -> ModelId {
        match self {
            Description::Uri(_) => ModelId::Uri,
            Description::Template(_) => ModelId::Template,
            Description::Semantic(_) => ModelId::Semantic,
        }
    }
}

/// A query payload in one of the pluggable models.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryPayload {
    Uri(String),
    Template(DescriptionTemplate),
    Semantic(ServiceRequest),
}

impl QueryPayload {
    pub fn model(&self) -> ModelId {
        match self {
            QueryPayload::Uri(_) => ModelId::Uri,
            QueryPayload::Template(_) => ModelId::Template,
            QueryPayload::Semantic(_) => ModelId::Semantic,
        }
    }
}

/// A published service advertisement.
#[derive(Clone, PartialEq, Debug)]
pub struct Advertisement {
    pub id: AdvertId,
    /// The node hosting the service (invocation happens directly against it).
    pub provider: NodeId,
    pub description: Description,
    /// Bumped on each republish/update so newer content wins.
    pub version: u32,
}

/// Per-origin unique query identifier; "giving queries their unique query ID
/// is a good approach to avoid query looping between registry nodes".
/// Ordered by `(origin, seq)` so id sets iterate deterministically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryId {
    pub origin: NodeId,
    pub seq: u64,
}

/// A query travelling through the registry network (or multicast on a LAN in
/// decentralized fallback mode).
#[derive(Clone, PartialEq, Debug)]
pub struct QueryMessage {
    pub id: QueryId,
    pub payload: QueryPayload,
    /// Query response control: cap on hits returned to the client; `None`
    /// means unlimited.
    pub max_responses: Option<u16>,
    /// Remaining registry-network hops ("the number of registry nodes to
    /// traverse for a query").
    pub ttl: u8,
    /// The registry that should aggregate federation responses (the
    /// client's home registry). `None` until a registry adopts the query.
    pub reply_to: Option<NodeId>,
}

/// One scored hit inside a query response. The evaluating registry attaches
/// its match verdict so the aggregating registry can rank across the
/// federation without re-evaluating.
#[derive(Clone, PartialEq, Debug)]
pub struct ResponseHit {
    pub advert: Advertisement,
    pub degree: Degree,
    pub distance: u32,
}

/// Registry network maintenance operations.
#[derive(Clone, PartialEq, Debug)]
pub enum MaintenanceOp {
    /// Multicast "any registries on this LAN?" (active registry discovery).
    RegistryProbe,
    /// Unicast reply to a probe. `load` is the registry's attachment-load
    /// hint, letting joiners spread out ("assigning clients to registries
    /// in an even distribution").
    RegistryProbeReply { advert_count: u32, load: u32 },
    /// Periodic multicast beacon (passive registry discovery).
    RegistryBeacon { advert_count: u32 },
    /// Aliveness check.
    Ping,
    Pong,
    /// Ask a registry for other registries it knows (registry signaling).
    /// `from_registry` distinguishes overlay self-healing requests from
    /// client/service attachment refreshes (which count as load).
    RegistryListRequest { from_registry: bool },
    /// Registry signaling: alternative registry endpoints, usable by clients
    /// for failover and by registries for overlay maintenance.
    RegistryList { registries: Vec<NodeId> },
    /// Join the WAN federation via a seed/peer registry.
    FederationJoin { known_peers: Vec<NodeId> },
    /// Accept a federation join, sharing the current peer view.
    FederationAck { peers: Vec<NodeId> },
    /// Summary information about the advertisements present in a registry.
    SummaryAdvert { advert_count: u32, models: Vec<ModelId> },
    /// Pull-based cooperation: ask a peer registry for its locally
    /// published advertisements (the counterpart of pushing
    /// `ForwardAdverts` — the paper's "push or pull advertisements between
    /// registries" design choice).
    AdvertPullRequest,
    /// Fetch a hosted artifact (ontology, schema…) by name, latest version.
    ArtifactRequest { name: String },
    /// Artifact fetch result; `size` models the artifact body length.
    ArtifactResponse { name: String, found: bool, size: u32 },
    /// Anti-entropy round opener: the sender's belief of the receiver's
    /// first-hand advert set, folded into `count` per-bucket digests over
    /// `(advert id, version, lease)`. The receiver compares against its own
    /// live first-hand set and answers [`MaintenanceOp::SyncDelta`] for the
    /// buckets that differ (silence means the peers agree).
    SyncDigest { count: u32, buckets: Vec<u64> },
    /// Anti-entropy reply: the full first-hand contents of the mismatched
    /// `buckets`, each advert delta-encoded against the receiver's last-acked
    /// version where possible ([`SyncEntry::Delta`] is a few bytes;
    /// [`SyncEntry::Full`] ships the whole advert on first sight or desync).
    /// An empty `buckets` list marks a loss-recovery resend that must not
    /// prune anything at the receiver.
    SyncDelta { buckets: Vec<u16>, entries: Vec<SyncEntry> },
    /// Anti-entropy repair request: the receiver optimistically assumed
    /// these adverts were already known ([`SyncEntry::Delta`]) but the
    /// requester has never seen them — resend them in full.
    SyncAck { missing: Vec<AdvertId> },
    /// Overload backpressure: the registry is shedding this sender's
    /// request and asks it to retry after `retry_after_ms` (clients add
    /// their own jitter). An explicit nack instead of a silent drop, so the
    /// sender backs off deliberately rather than timing out and amplifying
    /// the load.
    Busy { retry_after_ms: u64 },
}

/// One advert inside a [`MaintenanceOp::SyncDelta`], either in full or
/// delta-encoded against the version the receiver last acknowledged.
#[derive(Clone, PartialEq, Debug)]
pub enum SyncEntry {
    /// First sight (or desync): the whole advertisement plus the origin's
    /// current lease deadline.
    Full { advert: Advertisement, lease_until: SimTime },
    /// The receiver already holds this advert at `version`: only the lease
    /// heartbeat (and the version echo that proves it still applies) travel.
    Delta { id: AdvertId, version: u32, lease_until: SimTime },
}

/// Publishing operations.
#[derive(Clone, PartialEq, Debug)]
pub enum PublishOp {
    /// Publish an advertisement, requesting a lease of `lease_ms`.
    Publish { advert: Advertisement, lease_ms: u64 },
    /// Lease grant.
    PublishAck { id: AdvertId, lease_until: SimTime },
    /// Periodic lease renewal from the service node.
    RenewLease { id: AdvertId },
    /// Renewal result; `known == false` tells the provider to republish
    /// (e.g. after the registry restarted and lost soft state).
    RenewAck { id: AdvertId, lease_until: SimTime, known: bool },
    /// Publish/update rejected: the advert references ontology concepts the
    /// registry does not know, so it could never be matched semantically.
    /// Makes the failure observable to the publisher (who should fix the
    /// description or fetch the ontology, not retry as-is) instead of the
    /// advert sitting silently unmatched.
    PublishNack { id: AdvertId, unknown: Vec<ClassId> },
    /// Explicit deregistration.
    Remove { id: AdvertId },
    /// Republish with updated content (e.g. changed coverage area).
    Update { advert: Advertisement, lease_ms: u64 },
    /// Push advertisements to a peer registry (replication-style
    /// cooperation strategy).
    ForwardAdverts { adverts: Vec<Advertisement> },
}

/// Querying operations.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryOp {
    /// A query: client → registry, registry → registry (forwarding), or
    /// client → LAN multicast in decentralized fallback mode.
    Query(QueryMessage),
    /// A timeout re-issue of an earlier query. Carries a fresh wire id in
    /// `query.id` (responses and loop suppression key off it as usual) plus
    /// the root attempt's sequence number, so a registry that already saw —
    /// and may still be answering — the original can dedup instead of
    /// evaluating the same query twice (retry amplification).
    QueryRetry { query: QueryMessage, root_seq: u64 },
    /// Hits travelling back: remote registry → aggregating registry, or
    /// registry/service node → client.
    QueryResponse { query_id: QueryId, hits: Vec<ResponseHit>, responder: NodeId },
    /// Standing query: notify the subscriber about future matching
    /// advertisements ("registration for notifications about service
    /// advertisements of interest"). Leased like advertisements.
    Subscribe { id: QueryId, payload: QueryPayload, lease_ms: u64 },
    /// Subscription accepted.
    SubscribeAck { id: QueryId, lease_until: SimTime },
    /// Cancel a standing query.
    Unsubscribe { id: QueryId },
    /// A freshly published advertisement matched a standing query.
    Notify { subscription: QueryId, hit: ResponseHit },
    /// Ask a registry to plan a service *chain* for a request no single
    /// service satisfies (paper §4.3: composition "support in registries …
    /// will need protocol support from the service discovery architecture").
    ComposeRequest { id: QueryId, request: sds_semantic::ServiceRequest, max_depth: u8 },
    /// The planned chain, in execution order (empty + found=false: no plan).
    ComposeResponse { id: QueryId, found: bool, chain: Vec<Advertisement> },
}

/// The three operation categories.
#[derive(Clone, PartialEq, Debug)]
pub enum Operation {
    Maintenance(MaintenanceOp),
    Publishing(PublishOp),
    Querying(QueryOp),
}

/// Protocol version carried by every message.
pub const PROTOCOL_VERSION: u8 = 1;

/// The envelope: what every simulated packet carries.
#[derive(Clone, PartialEq, Debug)]
pub struct DiscoveryMessage {
    pub version: u8,
    pub op: Operation,
}

impl DiscoveryMessage {
    pub fn new(op: Operation) -> Self {
        Self { version: PROTOCOL_VERSION, op }
    }

    pub fn maintenance(op: MaintenanceOp) -> Self {
        Self::new(Operation::Maintenance(op))
    }

    pub fn publishing(op: PublishOp) -> Self {
        Self::new(Operation::Publishing(op))
    }

    pub fn querying(op: QueryOp) -> Self {
        Self::new(Operation::Querying(op))
    }

    /// Short label for traffic accounting.
    pub fn kind(&self) -> &'static str {
        match &self.op {
            Operation::Maintenance(m) => match m {
                MaintenanceOp::RegistryProbe => "probe",
                MaintenanceOp::RegistryProbeReply { .. } => "probe-reply",
                MaintenanceOp::RegistryBeacon { .. } => "beacon",
                MaintenanceOp::Ping => "ping",
                MaintenanceOp::Pong => "pong",
                MaintenanceOp::RegistryListRequest { .. } => "reglist-req",
                MaintenanceOp::RegistryList { .. } => "reglist",
                MaintenanceOp::FederationJoin { .. } => "fed-join",
                MaintenanceOp::FederationAck { .. } => "fed-ack",
                MaintenanceOp::SummaryAdvert { .. } => "summary",
                MaintenanceOp::AdvertPullRequest => "advert-pull",
                MaintenanceOp::ArtifactRequest { .. } => "artifact-req",
                MaintenanceOp::ArtifactResponse { .. } => "artifact-resp",
                MaintenanceOp::SyncDigest { .. } => "sync-digest",
                MaintenanceOp::SyncDelta { .. } => "sync-delta",
                MaintenanceOp::SyncAck { .. } => "sync-ack",
                MaintenanceOp::Busy { .. } => "busy",
            },
            Operation::Publishing(p) => match p {
                PublishOp::Publish { .. } => "publish",
                PublishOp::PublishAck { .. } => "publish-ack",
                PublishOp::RenewLease { .. } => "renew",
                PublishOp::RenewAck { .. } => "renew-ack",
                PublishOp::PublishNack { .. } => "publish-nack",
                PublishOp::Remove { .. } => "remove",
                PublishOp::Update { .. } => "update",
                PublishOp::ForwardAdverts { .. } => "fwd-adverts",
            },
            Operation::Querying(q) => match q {
                QueryOp::Query(_) => "query",
                QueryOp::QueryRetry { .. } => "query-retry",
                QueryOp::QueryResponse { .. } => "query-response",
                QueryOp::Subscribe { .. } => "subscribe",
                QueryOp::SubscribeAck { .. } => "subscribe-ack",
                QueryOp::Unsubscribe { .. } => "unsubscribe",
                QueryOp::Notify { .. } => "notify",
                QueryOp::ComposeRequest { .. } => "compose-req",
                QueryOp::ComposeResponse { .. } => "compose-resp",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_id_wire_tags_round_trip() {
        for m in ModelId::ALL {
            assert_eq!(ModelId::from_wire_tag(m.wire_tag()), Some(m));
        }
        assert_eq!(ModelId::from_wire_tag(7), None);
    }

    #[test]
    fn template_matching_semantics() {
        let desc = DescriptionTemplate {
            name: Some("blueforce-tracker".into()),
            type_uri: Some("urn:svc:tracking".into()),
            attrs: vec![("area".into(), "north".into()), ("rate".into(), "1hz".into())],
        };
        // Empty query matches everything.
        assert!(desc.matches(&DescriptionTemplate::default()));
        // Bound fields must agree.
        assert!(desc.matches(&DescriptionTemplate {
            type_uri: Some("urn:svc:tracking".into()),
            ..Default::default()
        }));
        assert!(!desc.matches(&DescriptionTemplate {
            type_uri: Some("urn:svc:chat".into()),
            ..Default::default()
        }));
        // Attribute subset with equal values.
        assert!(desc.matches(&DescriptionTemplate {
            attrs: vec![("area".into(), "north".into())],
            ..Default::default()
        }));
        assert!(!desc.matches(&DescriptionTemplate {
            attrs: vec![("area".into(), "south".into())],
            ..Default::default()
        }));
        assert!(!desc.matches(&DescriptionTemplate {
            attrs: vec![("missing".into(), "x".into())],
            ..Default::default()
        }));
    }

    #[test]
    fn description_reports_its_model() {
        assert_eq!(Description::Uri("urn:x".into()).model(), ModelId::Uri);
        assert_eq!(
            Description::Template(DescriptionTemplate::default()).model(),
            ModelId::Template
        );
        assert_eq!(QueryPayload::Uri("urn:x".into()).model(), ModelId::Uri);
    }

    #[test]
    fn kind_labels_are_distinct_for_core_ops() {
        let probe = DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbe);
        let ping = DiscoveryMessage::maintenance(MaintenanceOp::Ping);
        assert_ne!(probe.kind(), ping.kind());
        assert_eq!(probe.version, PROTOCOL_VERSION);
    }
}
