//! # sds-protocol — the generic service discovery protocol
//!
//! The paper's central protocol argument (its Fig. 3 / Fig. 5) is a *layered,
//! coherent stack*: one generic advertisement/query distribution protocol
//! whose payload — the service description — is pluggable behind a
//! "next header" field, "allowing nodes to choose the right handling of the
//! service description payload … \[and\] quickly filter and silently discard
//! messages they cannot understand".
//!
//! This crate defines that stack:
//!
//! * [`DiscoveryMessage`]: the envelope, with operations in the paper's three
//!   categories — registry network **maintenance**, **publishing**, and
//!   **querying**;
//! * [`ModelId`] + [`Description`]/[`QueryPayload`]: the next-header field
//!   and the three description models shipped (URI, template, semantic);
//! * [`Uuid`]-based [`AdvertId`]s ("a unique identification convention, e.g.
//!   based on UUIDs like in UDDI 3.0") and per-origin [`QueryId`]s ("giving
//!   queries their unique query ID … to avoid query looping");
//! * a wire-**size model** ([`WireSize`], [`Codec`]) charging XML/SOAP-like
//!   byte counts — the quantity the paper's bandwidth concerns are stated
//!   in — with an optional compression hook ("binary XML versions to reduce
//!   the burden on the network");
//! * a binary [`codec`] with full encode/decode round-tripping, standing in
//!   for the SOAP serialization layer.

pub mod codec;
mod message;
mod profile;
mod uuid;
mod wire;

pub use message::{
    AdvertId, Advertisement, Description, DescriptionTemplate, DiscoveryMessage, MaintenanceOp,
    ModelId, Operation, PublishOp, QueryId, QueryMessage, QueryOp, QueryPayload, ResponseHit,
    SyncEntry,
};
pub use profile::{minimum_profile, ProtocolProfile};
pub use uuid::Uuid;
pub use wire::{Codec, Compression, WireSize, SOAP_ENVELOPE_BYTES};
