//! Binary serialization of [`DiscoveryMessage`].
//!
//! The simulator moves Rust values, but a real deployment needs bytes; this
//! codec is the SOAP-serialization stand-in and proves the message set is
//! fully serializable (every field reachable, every enum tagged). Encoding is
//! a simple tagged little-endian format; [`decode`] validates tags, UTF-8,
//! version, and trailing bytes.

use std::fmt;

use sds_semantic::{ClassId, Degree, QosConstraint, QosValue, ServiceProfile, ServiceRequest};
use sds_simnet::NodeId;

use crate::message::{
    Advertisement, Description, DescriptionTemplate, DiscoveryMessage, MaintenanceOp, ModelId,
    Operation, PublishOp, QueryId, QueryMessage, QueryOp, QueryPayload, ResponseHit, SyncEntry,
    PROTOCOL_VERSION,
};
use crate::uuid::Uuid;

/// Decoding failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    UnexpectedEof,
    InvalidTag { what: &'static str, tag: u8 },
    BadUtf8,
    TrailingBytes,
    BadVersion(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of input"),
            Self::InvalidTag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            Self::BadUtf8 => write!(f, "string is not valid UTF-8"),
            Self::TrailingBytes => write!(f, "trailing bytes after message"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::with_capacity(128) }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_str(&mut self, s: &Option<String>) {
        match s {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }
    fn node(&mut self, n: NodeId) {
        self.u32(n.0);
    }
    fn nodes(&mut self, ns: &[NodeId]) {
        self.u32(ns.len() as u32);
        for n in ns {
            self.node(*n);
        }
    }
    fn class(&mut self, c: ClassId) {
        self.u32(c.0);
    }
    fn classes(&mut self, cs: &[ClassId]) {
        self.u32(cs.len() as u32);
        for c in cs {
            self.class(*c);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type R<T> = Result<T, DecodeError>;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> R<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> R<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag { what: "bool", tag: t }),
        }
    }
    fn u16(&mut self) -> R<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }
    fn u32(&mut self) -> R<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }
    fn u64(&mut self) -> R<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
    fn u128(&mut self) -> R<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("len")))
    }
    fn f64(&mut self) -> R<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> R<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
    fn opt_str(&mut self) -> R<Option<String>> {
        Ok(if self.bool()? { Some(self.str()?) } else { None })
    }
    fn node(&mut self) -> R<NodeId> {
        Ok(NodeId(self.u32()?))
    }
    fn nodes(&mut self) -> R<Vec<NodeId>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.node()).collect()
    }
    fn class(&mut self) -> R<ClassId> {
        Ok(ClassId(self.u32()?))
    }
    fn classes(&mut self) -> R<Vec<ClassId>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.class()).collect()
    }
}

fn qos_key_tag(k: sds_semantic::QosValue) -> u8 {
    key_tag(k.key)
}

fn key_tag(k: sds_semantic::QosKey) -> u8 {
    use sds_semantic::QosKey::*;
    match k {
        LatencyMs => 0,
        UpdatePeriodS => 1,
        CoverageM => 2,
        Accuracy => 3,
    }
}

fn key_from_tag(tag: u8) -> R<sds_semantic::QosKey> {
    use sds_semantic::QosKey::*;
    Ok(match tag {
        0 => LatencyMs,
        1 => UpdatePeriodS,
        2 => CoverageM,
        3 => Accuracy,
        t => return Err(DecodeError::InvalidTag { what: "qos key", tag: t }),
    })
}

fn degree_tag(d: Degree) -> u8 {
    match d {
        Degree::Fail => 0,
        Degree::Subsumes => 1,
        Degree::PlugIn => 2,
        Degree::Exact => 3,
    }
}

fn degree_from_tag(tag: u8) -> R<Degree> {
    Ok(match tag {
        0 => Degree::Fail,
        1 => Degree::Subsumes,
        2 => Degree::PlugIn,
        3 => Degree::Exact,
        t => return Err(DecodeError::InvalidTag { what: "degree", tag: t }),
    })
}

fn write_profile(w: &mut Writer, p: &ServiceProfile) {
    w.str(&p.name);
    w.class(p.category);
    w.classes(&p.inputs);
    w.classes(&p.outputs);
    w.u32(p.qos.len() as u32);
    for q in &p.qos {
        w.u8(qos_key_tag(*q));
        w.f64(q.value);
    }
}

fn read_profile(r: &mut Reader<'_>) -> R<ServiceProfile> {
    let name = r.str()?;
    let category = r.class()?;
    let inputs = r.classes()?;
    let outputs = r.classes()?;
    let n = r.u32()? as usize;
    let mut qos = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let key = key_from_tag(r.u8()?)?;
        qos.push(QosValue { key, value: r.f64()? });
    }
    Ok(ServiceProfile { name, category, inputs, outputs, qos })
}

fn write_request(w: &mut Writer, req: &ServiceRequest) {
    match req.category {
        Some(c) => {
            w.bool(true);
            w.class(c);
        }
        None => w.bool(false),
    }
    w.classes(&req.outputs);
    w.classes(&req.provided_inputs);
    w.u32(req.qos.len() as u32);
    for q in &req.qos {
        w.u8(key_tag(q.key));
        w.f64(q.bound);
    }
}

fn read_request(r: &mut Reader<'_>) -> R<ServiceRequest> {
    let category = if r.bool()? { Some(r.class()?) } else { None };
    let outputs = r.classes()?;
    let provided_inputs = r.classes()?;
    let n = r.u32()? as usize;
    let mut qos = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let key = key_from_tag(r.u8()?)?;
        qos.push(QosConstraint { key, bound: r.f64()? });
    }
    Ok(ServiceRequest { category, outputs, provided_inputs, qos })
}

fn write_template(w: &mut Writer, t: &DescriptionTemplate) {
    w.opt_str(&t.name);
    w.opt_str(&t.type_uri);
    w.u32(t.attrs.len() as u32);
    for (k, v) in &t.attrs {
        w.str(k);
        w.str(v);
    }
}

fn read_template(r: &mut Reader<'_>) -> R<DescriptionTemplate> {
    let name = r.opt_str()?;
    let type_uri = r.opt_str()?;
    let n = r.u32()? as usize;
    let mut attrs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        attrs.push((r.str()?, r.str()?));
    }
    Ok(DescriptionTemplate { name, type_uri, attrs })
}

fn write_description(w: &mut Writer, d: &Description) {
    w.u8(d.model().wire_tag());
    match d {
        Description::Uri(u) => w.str(u),
        Description::Template(t) => write_template(w, t),
        Description::Semantic(p) => write_profile(w, p),
    }
}

fn read_description(r: &mut Reader<'_>) -> R<Description> {
    let tag = r.u8()?;
    match ModelId::from_wire_tag(tag).ok_or(DecodeError::InvalidTag { what: "model", tag })? {
        ModelId::Uri => Ok(Description::Uri(r.str()?)),
        ModelId::Template => Ok(Description::Template(read_template(r)?)),
        ModelId::Semantic => Ok(Description::Semantic(read_profile(r)?)),
    }
}

fn write_payload(w: &mut Writer, p: &QueryPayload) {
    w.u8(p.model().wire_tag());
    match p {
        QueryPayload::Uri(u) => w.str(u),
        QueryPayload::Template(t) => write_template(w, t),
        QueryPayload::Semantic(req) => write_request(w, req),
    }
}

fn read_payload(r: &mut Reader<'_>) -> R<QueryPayload> {
    let tag = r.u8()?;
    match ModelId::from_wire_tag(tag).ok_or(DecodeError::InvalidTag { what: "model", tag })? {
        ModelId::Uri => Ok(QueryPayload::Uri(r.str()?)),
        ModelId::Template => Ok(QueryPayload::Template(read_template(r)?)),
        ModelId::Semantic => Ok(QueryPayload::Semantic(read_request(r)?)),
    }
}

fn write_advert(w: &mut Writer, a: &Advertisement) {
    w.u128(a.id.0);
    w.node(a.provider);
    w.u32(a.version);
    write_description(w, &a.description);
}

fn read_advert(r: &mut Reader<'_>) -> R<Advertisement> {
    let id = Uuid(r.u128()?);
    let provider = r.node()?;
    let version = r.u32()?;
    let description = read_description(r)?;
    Ok(Advertisement { id, provider, description, version })
}

fn write_query(w: &mut Writer, q: &QueryMessage) {
    w.node(q.id.origin);
    w.u64(q.id.seq);
    match q.max_responses {
        Some(m) => {
            w.bool(true);
            w.u16(m);
        }
        None => w.bool(false),
    }
    w.u8(q.ttl);
    match q.reply_to {
        Some(n) => {
            w.bool(true);
            w.node(n);
        }
        None => w.bool(false),
    }
    write_payload(w, &q.payload);
}

fn read_query(r: &mut Reader<'_>) -> R<QueryMessage> {
    let origin = r.node()?;
    let seq = r.u64()?;
    let max_responses = if r.bool()? { Some(r.u16()?) } else { None };
    let ttl = r.u8()?;
    let reply_to = if r.bool()? { Some(r.node()?) } else { None };
    let payload = read_payload(r)?;
    Ok(QueryMessage { id: QueryId { origin, seq }, payload, max_responses, ttl, reply_to })
}

fn write_maintenance(w: &mut Writer, m: &MaintenanceOp) {
    match m {
        MaintenanceOp::RegistryProbe => w.u8(0),
        MaintenanceOp::RegistryProbeReply { advert_count, load } => {
            w.u8(1);
            w.u32(*advert_count);
            w.u32(*load);
        }
        MaintenanceOp::RegistryBeacon { advert_count } => {
            w.u8(2);
            w.u32(*advert_count);
        }
        MaintenanceOp::Ping => w.u8(3),
        MaintenanceOp::Pong => w.u8(4),
        MaintenanceOp::RegistryListRequest { from_registry } => {
            w.u8(5);
            w.bool(*from_registry);
        }
        MaintenanceOp::RegistryList { registries } => {
            w.u8(6);
            w.nodes(registries);
        }
        MaintenanceOp::FederationJoin { known_peers } => {
            w.u8(7);
            w.nodes(known_peers);
        }
        MaintenanceOp::FederationAck { peers } => {
            w.u8(8);
            w.nodes(peers);
        }
        MaintenanceOp::SummaryAdvert { advert_count, models } => {
            w.u8(9);
            w.u32(*advert_count);
            w.u32(models.len() as u32);
            for m in models {
                w.u8(m.wire_tag());
            }
        }
        MaintenanceOp::AdvertPullRequest => w.u8(12),
        MaintenanceOp::ArtifactRequest { name } => {
            w.u8(10);
            w.str(name);
        }
        MaintenanceOp::ArtifactResponse { name, found, size } => {
            w.u8(11);
            w.str(name);
            w.bool(*found);
            w.u32(*size);
        }
        MaintenanceOp::SyncDigest { count, buckets } => {
            w.u8(13);
            w.u32(*count);
            w.u32(buckets.len() as u32);
            for b in buckets {
                w.u64(*b);
            }
        }
        MaintenanceOp::SyncDelta { buckets, entries } => {
            w.u8(14);
            w.u32(buckets.len() as u32);
            for b in buckets {
                w.u16(*b);
            }
            w.u32(entries.len() as u32);
            for e in entries {
                write_sync_entry(w, e);
            }
        }
        MaintenanceOp::SyncAck { missing } => {
            w.u8(15);
            w.u32(missing.len() as u32);
            for id in missing {
                w.u128(id.0);
            }
        }
        MaintenanceOp::Busy { retry_after_ms } => {
            w.u8(16);
            w.u64(*retry_after_ms);
        }
    }
}

fn write_sync_entry(w: &mut Writer, e: &SyncEntry) {
    match e {
        SyncEntry::Full { advert, lease_until } => {
            w.u8(0);
            w.u64(*lease_until);
            write_advert(w, advert);
        }
        SyncEntry::Delta { id, version, lease_until } => {
            w.u8(1);
            w.u128(id.0);
            w.u32(*version);
            w.u64(*lease_until);
        }
    }
}

fn read_sync_entry(r: &mut Reader<'_>) -> R<SyncEntry> {
    Ok(match r.u8()? {
        0 => {
            let lease_until = r.u64()?;
            SyncEntry::Full { advert: read_advert(r)?, lease_until }
        }
        1 => SyncEntry::Delta { id: Uuid(r.u128()?), version: r.u32()?, lease_until: r.u64()? },
        t => return Err(DecodeError::InvalidTag { what: "sync entry", tag: t }),
    })
}

fn read_maintenance(r: &mut Reader<'_>) -> R<MaintenanceOp> {
    Ok(match r.u8()? {
        0 => MaintenanceOp::RegistryProbe,
        1 => MaintenanceOp::RegistryProbeReply { advert_count: r.u32()?, load: r.u32()? },
        2 => MaintenanceOp::RegistryBeacon { advert_count: r.u32()? },
        3 => MaintenanceOp::Ping,
        4 => MaintenanceOp::Pong,
        5 => MaintenanceOp::RegistryListRequest { from_registry: r.bool()? },
        6 => MaintenanceOp::RegistryList { registries: r.nodes()? },
        7 => MaintenanceOp::FederationJoin { known_peers: r.nodes()? },
        8 => MaintenanceOp::FederationAck { peers: r.nodes()? },
        9 => {
            let advert_count = r.u32()?;
            let n = r.u32()? as usize;
            let mut models = Vec::with_capacity(n.min(8));
            for _ in 0..n {
                let tag = r.u8()?;
                models.push(
                    ModelId::from_wire_tag(tag)
                        .ok_or(DecodeError::InvalidTag { what: "model", tag })?,
                );
            }
            MaintenanceOp::SummaryAdvert { advert_count, models }
        }
        10 => MaintenanceOp::ArtifactRequest { name: r.str()? },
        12 => MaintenanceOp::AdvertPullRequest,
        11 => MaintenanceOp::ArtifactResponse { name: r.str()?, found: r.bool()?, size: r.u32()? },
        13 => {
            let count = r.u32()?;
            let n = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                buckets.push(r.u64()?);
            }
            MaintenanceOp::SyncDigest { count, buckets }
        }
        14 => {
            let n = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                buckets.push(r.u16()?);
            }
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                entries.push(read_sync_entry(r)?);
            }
            MaintenanceOp::SyncDelta { buckets, entries }
        }
        15 => {
            let n = r.u32()? as usize;
            let mut missing = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                missing.push(Uuid(r.u128()?));
            }
            MaintenanceOp::SyncAck { missing }
        }
        16 => MaintenanceOp::Busy { retry_after_ms: r.u64()? },
        t => return Err(DecodeError::InvalidTag { what: "maintenance op", tag: t }),
    })
}

fn write_publish(w: &mut Writer, p: &PublishOp) {
    match p {
        PublishOp::Publish { advert, lease_ms } => {
            w.u8(0);
            w.u64(*lease_ms);
            write_advert(w, advert);
        }
        PublishOp::PublishAck { id, lease_until } => {
            w.u8(1);
            w.u128(id.0);
            w.u64(*lease_until);
        }
        PublishOp::RenewLease { id } => {
            w.u8(2);
            w.u128(id.0);
        }
        PublishOp::RenewAck { id, lease_until, known } => {
            w.u8(3);
            w.u128(id.0);
            w.u64(*lease_until);
            w.bool(*known);
        }
        PublishOp::Remove { id } => {
            w.u8(4);
            w.u128(id.0);
        }
        PublishOp::Update { advert, lease_ms } => {
            w.u8(5);
            w.u64(*lease_ms);
            write_advert(w, advert);
        }
        PublishOp::ForwardAdverts { adverts } => {
            w.u8(6);
            w.u32(adverts.len() as u32);
            for a in adverts {
                write_advert(w, a);
            }
        }
        PublishOp::PublishNack { id, unknown } => {
            w.u8(7);
            w.u128(id.0);
            w.classes(unknown);
        }
    }
}

fn read_publish(r: &mut Reader<'_>) -> R<PublishOp> {
    Ok(match r.u8()? {
        0 => {
            let lease_ms = r.u64()?;
            PublishOp::Publish { advert: read_advert(r)?, lease_ms }
        }
        1 => PublishOp::PublishAck { id: Uuid(r.u128()?), lease_until: r.u64()? },
        2 => PublishOp::RenewLease { id: Uuid(r.u128()?) },
        3 => PublishOp::RenewAck { id: Uuid(r.u128()?), lease_until: r.u64()?, known: r.bool()? },
        4 => PublishOp::Remove { id: Uuid(r.u128()?) },
        5 => {
            let lease_ms = r.u64()?;
            PublishOp::Update { advert: read_advert(r)?, lease_ms }
        }
        6 => {
            let n = r.u32()? as usize;
            let mut adverts = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                adverts.push(read_advert(r)?);
            }
            PublishOp::ForwardAdverts { adverts }
        }
        7 => PublishOp::PublishNack { id: Uuid(r.u128()?), unknown: r.classes()? },
        t => return Err(DecodeError::InvalidTag { what: "publish op", tag: t }),
    })
}

fn write_queryop(w: &mut Writer, q: &QueryOp) {
    match q {
        QueryOp::Query(qm) => {
            w.u8(0);
            write_query(w, qm);
        }
        QueryOp::QueryRetry { query, root_seq } => {
            w.u8(8);
            w.u64(*root_seq);
            write_query(w, query);
        }
        QueryOp::Subscribe { id, payload, lease_ms } => {
            w.u8(2);
            w.node(id.origin);
            w.u64(id.seq);
            w.u64(*lease_ms);
            write_payload(w, payload);
        }
        QueryOp::SubscribeAck { id, lease_until } => {
            w.u8(3);
            w.node(id.origin);
            w.u64(id.seq);
            w.u64(*lease_until);
        }
        QueryOp::Unsubscribe { id } => {
            w.u8(4);
            w.node(id.origin);
            w.u64(id.seq);
        }
        QueryOp::Notify { subscription, hit } => {
            w.u8(5);
            w.node(subscription.origin);
            w.u64(subscription.seq);
            w.u8(degree_tag(hit.degree));
            w.u32(hit.distance);
            write_advert(w, &hit.advert);
        }
        QueryOp::ComposeRequest { id, request, max_depth } => {
            w.u8(6);
            w.node(id.origin);
            w.u64(id.seq);
            w.u8(*max_depth);
            write_request(w, request);
        }
        QueryOp::ComposeResponse { id, found, chain } => {
            w.u8(7);
            w.node(id.origin);
            w.u64(id.seq);
            w.bool(*found);
            w.u32(chain.len() as u32);
            for a in chain {
                write_advert(w, a);
            }
        }
        QueryOp::QueryResponse { query_id, hits, responder } => {
            w.u8(1);
            w.node(query_id.origin);
            w.u64(query_id.seq);
            w.node(*responder);
            w.u32(hits.len() as u32);
            for h in hits {
                w.u8(degree_tag(h.degree));
                w.u32(h.distance);
                write_advert(w, &h.advert);
            }
        }
    }
}

fn read_queryop(r: &mut Reader<'_>) -> R<QueryOp> {
    Ok(match r.u8()? {
        0 => QueryOp::Query(read_query(r)?),
        1 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            let responder = r.node()?;
            let n = r.u32()? as usize;
            let mut hits = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let degree = degree_from_tag(r.u8()?)?;
                let distance = r.u32()?;
                hits.push(ResponseHit { advert: read_advert(r)?, degree, distance });
            }
            QueryOp::QueryResponse { query_id: QueryId { origin, seq }, hits, responder }
        }
        2 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            let lease_ms = r.u64()?;
            let payload = read_payload(r)?;
            QueryOp::Subscribe { id: QueryId { origin, seq }, payload, lease_ms }
        }
        3 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            let lease_until = r.u64()?;
            QueryOp::SubscribeAck { id: QueryId { origin, seq }, lease_until }
        }
        4 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            QueryOp::Unsubscribe { id: QueryId { origin, seq } }
        }
        5 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            let degree = degree_from_tag(r.u8()?)?;
            let distance = r.u32()?;
            let advert = read_advert(r)?;
            QueryOp::Notify {
                subscription: QueryId { origin, seq },
                hit: ResponseHit { advert, degree, distance },
            }
        }
        6 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            let max_depth = r.u8()?;
            let request = read_request(r)?;
            QueryOp::ComposeRequest { id: QueryId { origin, seq }, request, max_depth }
        }
        7 => {
            let origin = r.node()?;
            let seq = r.u64()?;
            let found = r.bool()?;
            let n = r.u32()? as usize;
            let mut chain = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                chain.push(read_advert(r)?);
            }
            QueryOp::ComposeResponse { id: QueryId { origin, seq }, found, chain }
        }
        8 => {
            let root_seq = r.u64()?;
            QueryOp::QueryRetry { query: read_query(r)?, root_seq }
        }
        t => return Err(DecodeError::InvalidTag { what: "query op", tag: t }),
    })
}

/// Serializes one query payload on its own, using the exact wire encoding.
/// The encoding is injective (floats go through their bit patterns, strings
/// are length-prefixed), so equal byte strings ⇔ equal payloads — which is
/// what lets registries key result caches on payloads that cannot derive
/// `Eq`/`Hash` themselves (QoS fields are `f64`).
pub fn encode_payload(p: &QueryPayload) -> Vec<u8> {
    let mut w = Writer::new();
    write_payload(&mut w, p);
    w.buf
}

/// Serializes a message.
pub fn encode(msg: &DiscoveryMessage) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(msg.version);
    match &msg.op {
        Operation::Maintenance(m) => {
            w.u8(0);
            write_maintenance(&mut w, m);
        }
        Operation::Publishing(p) => {
            w.u8(1);
            write_publish(&mut w, p);
        }
        Operation::Querying(q) => {
            w.u8(2);
            write_queryop(&mut w, q);
        }
    }
    w.buf
}

/// Number of leading bytes that form the frame envelope (version, operation
/// category, operation tag). [`mutate_frame`]'s field-aware arm leaves these
/// intact so the mutant exercises field decoders — and, when it decodes, the
/// role handlers — instead of dying at the envelope checks.
pub const ENVELOPE_LEN: usize = 3;

/// Applies a small random mutation to an encoded frame: byte flips, an
/// insertion, a deletion, truncation, or a field-aware payload fuzz that
/// preserves the envelope. This is the canonical frame corruption used both
/// by the chaos fault-injection hook (encode → `mutate_frame` → [`decode`])
/// and the fuzz property asserting [`decode`] is total over its image.
pub fn mutate_frame(rng: &mut sds_rand::Rng, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.gen_range(0..5u32) {
        // Flip 1–4 random bytes in place.
        0 => {
            if !out.is_empty() {
                for _ in 0..rng.gen_range(1..=4u32) {
                    let i = rng.gen_range(0..out.len());
                    out[i] ^= rng.gen_range(1..=255u32) as u8;
                }
            }
        }
        // Insert a random byte.
        1 => {
            let i = rng.gen_range(0..=out.len());
            out.insert(i, rng.gen_range(0..=255u32) as u8);
        }
        // Delete a random byte.
        2 => {
            if !out.is_empty() {
                let i = rng.gen_range(0..out.len());
                out.remove(i);
            }
        }
        // Truncate.
        3 => {
            let keep = rng.gen_range(0..=out.len());
            out.truncate(keep);
        }
        // Field-aware fuzz (see `fuzz_payload`).
        _ => return fuzz_payload(rng, &out),
    }
    out
}

/// Field-aware frame fuzz: keeps the envelope (version + category + op tag)
/// valid and flips only payload bytes, yielding frames that survive the
/// outer checks and stress the per-field decoders — and, via the chaos
/// hook, the role handlers behind them.
pub fn fuzz_payload(rng: &mut sds_rand::Rng, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.len() > ENVELOPE_LEN {
        for _ in 0..rng.gen_range(1..=4u32) {
            let i = rng.gen_range(ENVELOPE_LEN..out.len());
            out[i] ^= rng.gen_range(1..=255u32) as u8;
        }
    }
    out
}

/// Deserializes a message, validating version, tags, and message framing.
pub fn decode(bytes: &[u8]) -> R<DiscoveryMessage> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let op = match r.u8()? {
        0 => Operation::Maintenance(read_maintenance(&mut r)?),
        1 => Operation::Publishing(read_publish(&mut r)?),
        2 => Operation::Querying(read_queryop(&mut r)?),
        t => return Err(DecodeError::InvalidTag { what: "operation", tag: t }),
    };
    if r.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(DiscoveryMessage { version, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_semantic::QosKey;

    fn rt(msg: DiscoveryMessage) {
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn round_trip_maintenance_ops() {
        rt(DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbe));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbeReply {
            advert_count: 9,
            load: 3,
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::RegistryBeacon { advert_count: 2 }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::Ping));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::Pong));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::RegistryListRequest {
            from_registry: false,
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::RegistryList {
            registries: vec![NodeId(1), NodeId(4)],
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::FederationJoin {
            known_peers: vec![NodeId(7)],
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::FederationAck { peers: vec![] }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::SummaryAdvert {
            advert_count: 12,
            models: vec![ModelId::Uri, ModelId::Semantic],
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::ArtifactRequest { name: "nato".into() }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::ArtifactResponse {
            name: "nato".into(),
            found: true,
            size: 4096,
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::SyncDigest {
            count: 16,
            buckets: vec![0, u64::MAX, 0xDEAD_BEEF],
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::SyncDelta {
            buckets: vec![0, 3, 15],
            entries: vec![
                SyncEntry::Delta { id: Uuid(7), version: 2, lease_until: 30_000 },
                SyncEntry::Full {
                    advert: Advertisement {
                        id: Uuid(8),
                        provider: NodeId(3),
                        description: Description::Uri("urn:svc:chat".into()),
                        version: 1,
                    },
                    lease_until: 45_000,
                },
            ],
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::SyncDelta { buckets: vec![], entries: vec![] }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::SyncAck {
            missing: vec![Uuid(1), Uuid(u128::MAX)],
        }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::Busy { retry_after_ms: 0 }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::Busy { retry_after_ms: 1_500 }));
        rt(DiscoveryMessage::maintenance(MaintenanceOp::Busy { retry_after_ms: u64::MAX }));
    }

    #[test]
    fn truncated_busy_retry_after_is_rejected_not_misread() {
        // Busy is envelope + one u64; every strict prefix must fail cleanly
        // (a truncated retry_after_ms must never decode as a shorter value).
        let bytes = encode(&DiscoveryMessage::maintenance(MaintenanceOp::Busy {
            retry_after_ms: 0x0102_0304_0506_0708,
        }));
        assert_eq!(bytes.len(), ENVELOPE_LEN + 8);
        for keep in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..keep]),
                Err(DecodeError::UnexpectedEof),
                "prefix of {keep} bytes must not decode"
            );
        }
        // And corrupting any single payload byte still decodes as Busy (the
        // field is a plain u64 — no interior structure to invalidate), with
        // a different retry_after value, never a panic or a wrong op.
        for i in ENVELOPE_LEN..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xFF;
            match decode(&m) {
                Ok(msg) => assert_eq!(msg.kind(), "busy"),
                Err(e) => panic!("byte {i} corruption must still frame-decode, got {e}"),
            }
        }
    }

    #[test]
    fn round_trip_publish_ops() {
        let advert = Advertisement {
            id: Uuid(42),
            provider: NodeId(3),
            description: Description::Semantic(
                sds_semantic::ServiceProfile::new("svc", ClassId(2))
                    .with_inputs(&[ClassId(1)])
                    .with_outputs(&[ClassId(4), ClassId(5)])
                    .with_qos(QosKey::Accuracy, 0.75),
            ),
            version: 3,
        };
        rt(DiscoveryMessage::publishing(PublishOp::Publish { advert: advert.clone(), lease_ms: 15_000 }));
        rt(DiscoveryMessage::publishing(PublishOp::PublishAck { id: Uuid(42), lease_until: 99 }));
        rt(DiscoveryMessage::publishing(PublishOp::RenewLease { id: Uuid(42) }));
        rt(DiscoveryMessage::publishing(PublishOp::RenewAck {
            id: Uuid(42),
            lease_until: 123,
            known: false,
        }));
        rt(DiscoveryMessage::publishing(PublishOp::PublishNack {
            id: Uuid(42),
            unknown: vec![ClassId(900), ClassId(901)],
        }));
        rt(DiscoveryMessage::publishing(PublishOp::Remove { id: Uuid(42) }));
        rt(DiscoveryMessage::publishing(PublishOp::Update { advert: advert.clone(), lease_ms: 1 }));
        rt(DiscoveryMessage::publishing(PublishOp::ForwardAdverts { adverts: vec![advert] }));
    }

    #[test]
    fn round_trip_query_ops() {
        let q = QueryMessage {
            id: QueryId { origin: NodeId(5), seq: 77 },
            payload: QueryPayload::Semantic(
                ServiceRequest::for_category(ClassId(1))
                    .with_outputs(&[ClassId(2)])
                    .with_provided_inputs(&[ClassId(3)])
                    .with_qos(QosKey::LatencyMs, 100.0),
            ),
            max_responses: Some(5),
            ttl: 3,
            reply_to: Some(NodeId(9)),
        };
        rt(DiscoveryMessage::querying(QueryOp::Query(q)));
        rt(DiscoveryMessage::querying(QueryOp::Query(QueryMessage {
            id: QueryId { origin: NodeId(0), seq: 0 },
            payload: QueryPayload::Uri("urn:svc:chat".into()),
            max_responses: None,
            ttl: 0,
            reply_to: None,
        })));
        rt(DiscoveryMessage::querying(QueryOp::QueryRetry {
            query: QueryMessage {
                id: QueryId { origin: NodeId(5), seq: 78 },
                payload: QueryPayload::Uri("urn:svc:chat".into()),
                max_responses: Some(3),
                ttl: 2,
                reply_to: None,
            },
            root_seq: 77,
        }));
        rt(DiscoveryMessage::querying(QueryOp::QueryResponse {
            query_id: QueryId { origin: NodeId(5), seq: 77 },
            hits: vec![ResponseHit {
                advert: Advertisement {
                    id: Uuid(1),
                    provider: NodeId(2),
                    description: Description::Template(DescriptionTemplate {
                        name: Some("n".into()),
                        type_uri: None,
                        attrs: vec![("k".into(), "v".into())],
                    }),
                    version: 1,
                },
                degree: Degree::PlugIn,
                distance: 2,
            }],
            responder: NodeId(8),
        }));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&DiscoveryMessage::maintenance(MaintenanceOp::Ping));
        bytes[0] = 99;
        assert_eq!(decode(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn rejects_trailing_bytes_and_truncation() {
        let mut bytes = encode(&DiscoveryMessage::maintenance(MaintenanceOp::Ping));
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes));
        let advert_msg = encode(&DiscoveryMessage::maintenance(MaintenanceOp::RegistryList {
            registries: vec![NodeId(1), NodeId(2)],
        }));
        assert_eq!(decode(&advert_msg[..advert_msg.len() - 2]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn rejects_unknown_tags() {
        let bytes = vec![PROTOCOL_VERSION, 9];
        assert!(matches!(decode(&bytes), Err(DecodeError::InvalidTag { what: "operation", .. })));
        let bytes = vec![PROTOCOL_VERSION, 0, 200];
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::InvalidTag { what: "maintenance op", .. })
        ));
    }
}
