//! Undirected graphs and survivability metrics for registry-network
//! topology analysis (experiment E9).

use std::collections::VecDeque;

use sds_rand::Seed;

/// A simple undirected graph over nodes `0..n`.
///
/// ```
/// use sds_metrics::topologies;
///
/// let star = topologies::star(16);
/// // Leaves reach the hub in 1 hop and each other in 2:
/// // (2*15*1 + 15*14*2) / (16*15) = 1.875.
/// assert_eq!(star.characteristic_path_length(), Some(1.875));
/// // Removing the hub (the highest-degree node) shatters the star.
/// let attacked = star.targeted_removal(1, 1);
/// assert!(attacked.giant_fraction[1] < 0.1);
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
}

impl Graph {
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n] }
    }

    /// Adds an undirected edge (self-loops and duplicates ignored).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || self.adj[a].contains(&b) {
            return;
        }
        self.adj[a].push(b);
        self.adj[b].push(a);
    }

    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Removes a node by detaching all its edges (keeps indices stable).
    pub fn remove_node(&mut self, v: usize) {
        let nbrs = std::mem::take(&mut self.adj[v]);
        for n in nbrs {
            self.adj[n].retain(|&x| x != v);
        }
    }

    /// Nodes that still have at least one incident edge, plus isolated but
    /// never-removed nodes cannot be distinguished here; survivability math
    /// therefore works on the full index range and treats detached nodes as
    /// singleton components.
    fn bfs_dists(&self, src: usize) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.adj.len()];
        dist[src] = Some(0);
        let mut q = VecDeque::from([src]);
        while let Some(v) = q.pop_front() {
            let d = dist[v].expect("visited");
            for &w in &self.adj[v] {
                if dist[w].is_none() {
                    dist[w] = Some(d + 1);
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// Characteristic path length: mean shortest-path length over connected
    /// pairs. `None` when no pair is connected.
    pub fn characteristic_path_length(&self) -> Option<f64> {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for src in 0..self.adj.len() {
            for (dst, d) in self.bfs_dists(src).iter().enumerate() {
                if dst != src {
                    if let Some(d) = d {
                        total += u64::from(*d);
                        pairs += 1;
                    }
                }
            }
        }
        (pairs > 0).then(|| total as f64 / pairs as f64)
    }

    /// Mean local clustering coefficient over nodes with degree ≥ 2
    /// (proportion of closed neighbour pairs).
    pub fn clustering_coefficient(&self) -> f64 {
        let mut sum = 0.0;
        let mut counted = 0usize;
        for v in 0..self.adj.len() {
            let nbrs = &self.adj[v];
            if nbrs.len() < 2 {
                continue;
            }
            let mut closed = 0usize;
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    if self.adj[nbrs[i]].contains(&nbrs[j]) {
                        closed += 1;
                    }
                }
            }
            let possible = nbrs.len() * (nbrs.len() - 1) / 2;
            sum += closed as f64 / possible as f64;
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        }
    }

    /// Size of the largest connected component.
    pub fn largest_component(&self) -> usize {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut best = 0;
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut size = 0;
            let mut q = VecDeque::from([s]);
            seen[s] = true;
            while let Some(v) = q.pop_front() {
                size += 1;
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        q.push_back(w);
                    }
                }
            }
            best = best.max(size);
        }
        best
    }
}

/// Result of a node-removal (failure/attack) experiment.
#[derive(Clone, Debug)]
pub struct RemovalReport {
    /// Fraction of nodes removed at each step (0.0, step, 2·step, …).
    pub removed_fraction: Vec<f64>,
    /// Largest-component fraction of the ORIGINAL node count after each
    /// removal step.
    pub giant_fraction: Vec<f64>,
    /// Characteristic path length within what remains (None = fully
    /// disconnected).
    pub path_length: Vec<Option<f64>>,
}

impl Graph {
    /// Removes `steps` batches of `batch` nodes, chosen uniformly at random
    /// (the "random failure" column of E9). The removal order draws from the
    /// labelled `metrics.graph.removal` stream of `seed`, so it is
    /// independent of any stream used to generate the graph itself.
    pub fn random_removal(&self, batch: usize, steps: usize, seed: Seed) -> RemovalReport {
        let mut rng = seed.derive("metrics.graph.removal").rng();
        let order = {
            let mut v: Vec<usize> = (0..self.node_count()).collect();
            rng.shuffle(&mut v);
            v
        };
        self.removal_by_order(&order, batch, steps)
    }

    /// Removes highest-degree nodes first, recomputing degrees between
    /// batches (the "targeted attack" column of E9).
    pub fn targeted_removal(&self, batch: usize, steps: usize) -> RemovalReport {
        let n = self.node_count();
        let mut g = self.clone();
        let mut report = RemovalReport {
            removed_fraction: vec![0.0],
            giant_fraction: vec![g.largest_component() as f64 / n as f64],
            path_length: vec![g.characteristic_path_length()],
        };
        let mut removed = 0usize;
        for _ in 0..steps {
            for _ in 0..batch {
                if let Some((v, _)) = (0..n).map(|v| (v, g.degree(v))).max_by_key(|&(_, d)| d) {
                    g.remove_node(v);
                    removed += 1;
                }
            }
            report.removed_fraction.push(removed as f64 / n as f64);
            report.giant_fraction.push(g.largest_component() as f64 / n as f64);
            report.path_length.push(g.characteristic_path_length());
        }
        report
    }

    fn removal_by_order(&self, order: &[usize], batch: usize, steps: usize) -> RemovalReport {
        let n = self.node_count();
        let mut g = self.clone();
        let mut report = RemovalReport {
            removed_fraction: vec![0.0],
            giant_fraction: vec![g.largest_component() as f64 / n as f64],
            path_length: vec![g.characteristic_path_length()],
        };
        let mut it = order.iter();
        let mut removed = 0usize;
        for _ in 0..steps {
            for _ in 0..batch {
                if let Some(&v) = it.next() {
                    g.remove_node(v);
                    removed += 1;
                }
            }
            report.removed_fraction.push(removed as f64 / n as f64);
            report.giant_fraction.push(g.largest_component() as f64 / n as f64);
            report.path_length.push(g.characteristic_path_length());
        }
        report
    }
}

/// Registry-network topology generators for the survivability study.
pub mod topologies {
    use super::*;

    /// A star: one hub, `n-1` leaves — the centralized strawman.
    pub fn star(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(0, v);
        }
        g
    }

    /// A ring.
    pub fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n);
        }
        g
    }

    /// A full mesh — the decentralized extreme.
    pub fn full_mesh(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Erdős–Rényi G(n, p), plus a ring backbone to keep it connected at
    /// small n. Edge tosses draw from the labelled
    /// `metrics.topology.random` stream of `seed`.
    pub fn random_connected(n: usize, p: f64, seed: Seed) -> Graph {
        let mut rng = seed.derive("metrics.topology.random").rng();
        let mut g = ring(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// The paper's hybrid: `clusters` LAN clusters of `cluster_size`
    /// registries; registries within a cluster fully meshed; one gateway per
    /// cluster; gateways connected in a ring plus `extra_links` random
    /// long-range links ("only a few nodes that have long-range
    /// connections").
    pub fn super_peer(clusters: usize, cluster_size: usize, extra_links: usize, seed: Seed) -> Graph {
        let n = clusters * cluster_size;
        let mut g = Graph::new(n);
        for c in 0..clusters {
            let base = c * cluster_size;
            for i in 0..cluster_size {
                for j in (i + 1)..cluster_size {
                    g.add_edge(base + i, base + j);
                }
            }
        }
        // Gateways are each cluster's node 0; ring them. A second member
        // (node 1) carries a backup long-range link to the next cluster, so
        // losing a gateway does not strand its cluster — still "only a few
        // nodes that have long-range connections".
        for c in 0..clusters {
            let next = (c + 1) % clusters;
            g.add_edge(c * cluster_size, next * cluster_size);
            if cluster_size > 1 {
                g.add_edge(c * cluster_size + 1, next * cluster_size + 1);
            }
        }
        let mut rng = seed.derive("metrics.topology.super-peer").rng();
        for _ in 0..extra_links {
            let a = rng.gen_range(0..clusters) * cluster_size;
            let b = rng.gen_range(0..clusters) * cluster_size;
            g.add_edge(a, b);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::topologies::*;
    use super::*;

    #[test]
    fn path_length_of_known_graphs() {
        // Path graph 0-1-2: pairs (0,1)=1 (0,2)=2 (1,2)=1 → mean 4/3.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let cpl = g.characteristic_path_length().unwrap();
        assert!((cpl - 4.0 / 3.0).abs() < 1e-9);
        // Full mesh: always 1.
        assert_eq!(full_mesh(5).characteristic_path_length(), Some(1.0));
    }

    #[test]
    fn clustering_of_known_graphs() {
        assert_eq!(full_mesh(4).clustering_coefficient(), 1.0);
        assert_eq!(star(5).clustering_coefficient(), 0.0);
        // Triangle: every node's single neighbour pair is closed.
        let mut tri = Graph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(2, 0);
        assert_eq!(tri.clustering_coefficient(), 1.0);
    }

    #[test]
    fn star_dies_under_targeted_attack_but_not_random() {
        let g = star(50);
        let targeted = g.targeted_removal(1, 1);
        assert!(
            targeted.giant_fraction[1] < 0.05,
            "removing the hub shatters the star: {:?}",
            targeted.giant_fraction
        );
        // Random removal of one node almost certainly hits a leaf.
        let random = g.random_removal(1, 1, Seed(42));
        assert!(random.giant_fraction[1] > 0.9);
    }

    #[test]
    fn super_peer_survives_single_hub_loss_unlike_star() {
        let g = super_peer(8, 4, 4, Seed(1));
        assert_eq!(g.node_count(), 32);
        // Removing the single highest-degree node costs at most its own
        // cluster (4/32), while the same attack shatters a star completely.
        let t = g.targeted_removal(1, 1);
        assert!(
            t.giant_fraction[1] >= 0.8,
            "one hub loss keeps the overlay largely intact: {:?}",
            t.giant_fraction
        );
        // Random failure of 4 nodes barely dents it.
        let r = g.random_removal(4, 1, Seed(11));
        assert!(r.giant_fraction[1] >= 0.7, "random: {:?}", r.giant_fraction);
    }

    #[test]
    fn remove_node_detaches_edges() {
        let mut g = ring(4);
        assert_eq!(g.edge_count(), 4);
        g.remove_node(0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.largest_component(), 3);
    }

    #[test]
    fn ring_metrics() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.largest_component(), 6);
        // Ring of 6: distances 1,2,3 in both directions → mean = 1.8.
        let cpl = g.characteristic_path_length().unwrap();
        assert!((cpl - 1.8).abs() < 1e-9);
    }

    #[test]
    fn random_connected_is_connected() {
        let g = random_connected(30, 0.05, Seed(7));
        assert_eq!(g.largest_component(), 30);
    }

    #[test]
    fn disconnected_graph_has_no_cpl() {
        let g = Graph::new(4);
        assert_eq!(g.characteristic_path_length(), None);
        assert_eq!(g.largest_component(), 1);
    }
}
