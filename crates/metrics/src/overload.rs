//! Overload accounting: goodput, shed counts, and latency percentiles for
//! the admission-control experiments.
//!
//! The simulator and node stats already count *mechanisms* (capacity drops,
//! `Busy` nacks, stale serves); this ledger accounts for *outcomes* — of the
//! queries a workload offered, how many came back answered, how fast, and
//! how much backpressure each one absorbed. One ledger per measurement
//! window (e.g. calm vs storm) makes goodput-vs-offered-load tables a fold.

use crate::stats::{ratio, Summary};

/// Per-window outcome accounting for offered queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverloadLedger {
    /// Queries offered (every recorded query).
    pub offered: u64,
    /// Queries that completed with at least one response.
    pub answered: u64,
    /// Queries that absorbed at least one `Busy` nack.
    pub busy_nacked: u64,
    /// Queries that re-sent at least once (backoff, busy retry, failover).
    pub retried: u64,
    /// Total `Busy` nacks across all recorded queries.
    pub busy_nacks_total: u64,
    /// First-response latencies (ms) of the answered queries.
    latencies: Vec<u64>,
}

impl OverloadLedger {
    /// Records one completed query: whether it was answered, its
    /// first-response latency when it was, and the backpressure it saw.
    pub fn record(
        &mut self,
        answered: bool,
        first_response_latency: Option<u64>,
        busy_nacks: u32,
        retries: u8,
    ) {
        self.offered += 1;
        if answered {
            self.answered += 1;
            if let Some(lat) = first_response_latency {
                self.latencies.push(lat);
            }
        }
        if busy_nacks > 0 {
            self.busy_nacked += 1;
        }
        self.busy_nacks_total += u64::from(busy_nacks);
        if retries > 0 {
            self.retried += 1;
        }
    }

    /// Answered / offered (0.0 when nothing was offered). Under a storm this
    /// is the number the overload layer exists to defend.
    pub fn goodput(&self) -> f64 {
        ratio(self.answered, self.offered)
    }

    /// Float summary of first-response latencies.
    pub fn latency(&self) -> Summary {
        Summary::of_counts(self.latencies.iter().copied())
    }

    /// Nearest-rank percentile of first-response latency in whole ms
    /// (integer arithmetic — safe to embed in a determinism fingerprint).
    pub fn latency_percentile(&self, pct: u32) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = (n - 1) * u64::from(pct.min(100)) / 100;
        sorted[rank as usize]
    }

    /// Folds another window's ledger into this one.
    pub fn merge(&mut self, other: &OverloadLedger) {
        self.offered += other.offered;
        self.answered += other.answered;
        self.busy_nacked += other.busy_nacked;
        self.retried += other.retried;
        self.busy_nacks_total += other.busy_nacks_total;
        self.latencies.extend_from_slice(&other.latencies);
    }

    /// A deterministic one-line digest of the ledger: integers only, so two
    /// runs of the same seed must produce byte-identical lines.
    pub fn fingerprint_line(&self) -> String {
        format!(
            "offered={} answered={} busy_queries={} busy_nacks={} retried={} p50={} p95={} p99={}",
            self.offered,
            self.answered,
            self.busy_nacked,
            self.busy_nacks_total,
            self.retried,
            self.latency_percentile(50),
            self.latency_percentile(95),
            self.latency_percentile(99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OverloadLedger {
        let mut l = OverloadLedger::default();
        l.record(true, Some(10), 0, 0);
        l.record(true, Some(30), 2, 1);
        l.record(false, None, 1, 3);
        l.record(true, Some(20), 0, 0);
        l
    }

    #[test]
    fn counts_and_goodput() {
        let l = sample();
        assert_eq!(l.offered, 4);
        assert_eq!(l.answered, 3);
        assert_eq!(l.busy_nacked, 2);
        assert_eq!(l.busy_nacks_total, 3);
        assert_eq!(l.retried, 2);
        assert_eq!(l.goodput(), 0.75);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank_integers() {
        let l = sample();
        assert_eq!(l.latency_percentile(0), 10);
        assert_eq!(l.latency_percentile(50), 20);
        assert_eq!(l.latency_percentile(100), 30);
        assert_eq!(OverloadLedger::default().latency_percentile(95), 0);
    }

    #[test]
    fn merge_folds_windows() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.offered, 8);
        assert_eq!(a.answered, 6);
        assert_eq!(a.latency().n, 6);
    }

    #[test]
    fn fingerprint_is_stable_per_content() {
        assert_eq!(sample().fingerprint_line(), sample().fingerprint_line());
        let mut other = sample();
        other.record(false, None, 0, 0);
        assert_ne!(sample().fingerprint_line(), other.fingerprint_line());
    }
}
