//! Post-quiescence invariant checking for chaos experiments.
//!
//! A chaos soak injects churn and network faults, lets the system heal, and
//! then asserts convergence invariants ("every live advertised service is
//! discoverable again", "no expired lease survives", "duplicates never
//! double-count"). [`InvariantReport`] collects those checks by name so a
//! failing soak reports *every* violated invariant with its details, not
//! just the first assert that tripped — essential when one seed violates
//! three invariants for the same root cause.
//!
//! The report is deliberately dependency-free: experiment code evaluates
//! the domain predicates and records outcomes here.

use std::fmt::Write as _;

/// One named invariant with the violations recorded against it.
#[derive(Clone, Debug)]
struct Entry {
    name: String,
    checks: u64,
    violations: Vec<String>,
}

/// An accumulating pass/fail ledger for named invariants.
///
/// ```
/// use sds_metrics::InvariantReport;
///
/// let mut report = InvariantReport::new();
/// report.check("no-expired-lease", true, || unreachable!());
/// report.check("discoverable", false, || "provider 3 missing for query 7".into());
/// assert!(!report.is_clean());
/// assert_eq!(report.violation_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    entries: Vec<Entry>,
}

impl InvariantReport {
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, name: &str) -> &mut Entry {
        if let Some(i) = self.entries.iter().position(|e| e.name == name) {
            return &mut self.entries[i];
        }
        self.entries.push(Entry { name: name.into(), checks: 0, violations: Vec::new() });
        self.entries.last_mut().expect("just pushed")
    }

    /// Records one evaluation of invariant `name`. The detail closure runs
    /// only on violation, so hot loops can check cheaply.
    pub fn check(&mut self, name: &str, ok: bool, detail: impl FnOnce() -> String) {
        let e = self.entry(name);
        e.checks += 1;
        if !ok {
            e.violations.push(detail());
        }
    }

    /// Records an invariant as evaluated with no violation (useful when the
    /// check is a scan that found nothing wrong).
    pub fn pass(&mut self, name: &str) {
        self.entry(name).checks += 1;
    }

    /// True when every recorded check passed.
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(|e| e.violations.is_empty())
    }

    /// Total number of violations across all invariants.
    pub fn violation_count(&self) -> usize {
        self.entries.iter().map(|e| e.violations.len()).sum()
    }

    /// Total number of checks evaluated (diagnostic: a soak that evaluated
    /// zero checks proves nothing).
    pub fn check_count(&self) -> u64 {
        self.entries.iter().map(|e| e.checks).sum()
    }

    /// A human-readable ledger: one line per invariant, then each violation.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{}: {}/{} ok",
                e.name,
                e.checks - e.violations.len() as u64,
                e.checks
            );
            for v in &e.violations {
                let _ = writeln!(out, "  ✗ {v}");
            }
        }
        out
    }

    /// Panics with the full ledger when any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "{} invariant violation(s):\n{}",
            self.violation_count(),
            self.summary()
        );
    }
}

/// A tiny deterministic fingerprint (FNV-1a) for comparing run artifacts:
/// two runs of the same seed must produce byte-identical metrics lines, so
/// soaks compare `fingerprint(&lines)` instead of lugging strings around.
pub fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_stays_clean() {
        let mut r = InvariantReport::new();
        r.pass("a");
        r.check("b", true, || unreachable!("detail not computed on pass"));
        assert!(r.is_clean());
        assert_eq!(r.check_count(), 2);
        assert_eq!(r.violation_count(), 0);
        r.assert_clean();
    }

    #[test]
    fn violations_accumulate_per_invariant() {
        let mut r = InvariantReport::new();
        r.check("recall", false, || "q1".into());
        r.check("recall", false, || "q2".into());
        r.check("leases", true, || unreachable!());
        assert!(!r.is_clean());
        assert_eq!(r.violation_count(), 2);
        let s = r.summary();
        assert!(s.contains("recall: 0/2 ok"), "summary was: {s}");
        assert!(s.contains("q1") && s.contains("q2"));
        assert!(s.contains("leases: 1/1 ok"));
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn assert_clean_panics_with_ledger() {
        let mut r = InvariantReport::new();
        r.check("x", false, || "boom".into());
        r.assert_clean();
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_ne!(fingerprint(""), fingerprint(" "));
    }
}
