//! Recovery-time measurement for the rolling-chaos experiments.
//!
//! After a fault window heals, the harness samples discovery health (oracle
//! recall, stale-lease count, federation divergence) on a fixed cadence. A
//! system has *recovered* at the first sample where recall is back to 1.0
//! with no stale lease and every registry again holds a live copy of every
//! live advertisement — the paper's dynamic-environment claim made
//! measurable: how long until the registry network again answers every
//! answerable query correctly, from every entry point?

/// One post-window health probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoverySample {
    /// Simulation time the sample was taken, in ms.
    pub at: u64,
    /// Oracle recall over the probe queries in `[0, 1]`.
    pub recall: f64,
    /// Advertisements answered from leases that should have expired.
    pub stale_leases: u64,
    /// Federation divergence: live first-hand adverts some other live
    /// registry does not hold a live replica of. A diverged registry still
    /// answers queries — incompletely — so replication masks it from
    /// recall; this counts it directly.
    pub divergent: u64,
}

impl RecoverySample {
    /// A sample counts as healthy when every answerable query was answered,
    /// nothing stale leaked into the answers, and every live registry holds
    /// every live advert (no silently diverged replica set).
    pub fn healthy(&self) -> bool {
        self.recall >= 1.0 && self.stale_leases == 0 && self.divergent == 0
    }
}

/// Time from `window_end` to the first *healthy* sample, in ms. `None` when
/// the system never recovered within the sampled horizon — callers should
/// treat that as a failed window, not as instant recovery.
///
/// Samples taken before `window_end` are ignored so a plan may keep one
/// running sample log across windows.
pub fn time_to_recovery(window_end: u64, samples: &[RecoverySample]) -> Option<u64> {
    samples
        .iter()
        .filter(|s| s.at >= window_end)
        .find(|s| s.healthy())
        .map(|s| s.at - window_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(at: u64, recall: f64, stale: u64) -> RecoverySample {
        RecoverySample { at, recall, stale_leases: stale, divergent: 0 }
    }

    #[test]
    fn first_healthy_sample_after_the_window_wins() {
        let samples = [
            s(90, 1.0, 0),  // pre-window: ignored
            s(100, 0.5, 0), // degraded
            s(110, 1.0, 2), // full recall but stale answers: not recovered
            s(120, 1.0, 0), // recovered
            s(130, 1.0, 0),
        ];
        assert_eq!(time_to_recovery(100, &samples), Some(20));
    }

    #[test]
    fn divergent_replicas_block_recovery_even_at_full_recall() {
        let samples = [
            RecoverySample { at: 100, recall: 1.0, stale_leases: 0, divergent: 3 },
            RecoverySample { at: 110, recall: 1.0, stale_leases: 0, divergent: 0 },
        ];
        assert_eq!(time_to_recovery(100, &samples), Some(10));
    }

    #[test]
    fn immediate_health_is_zero_recovery_time() {
        assert_eq!(time_to_recovery(50, &[s(50, 1.0, 0)]), Some(0));
    }

    #[test]
    fn never_recovering_is_none_not_zero() {
        let samples = [s(100, 0.9, 0), s(110, 1.0, 1)];
        assert_eq!(time_to_recovery(100, &samples), None);
        assert_eq!(time_to_recovery(100, &[]), None);
    }
}
