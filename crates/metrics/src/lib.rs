//! # sds-metrics — experiment measurement toolkit
//!
//! Two unrelated-looking halves that the experiments share:
//!
//! * [`Summary`] / [`ratio`] / [`recall`] — descriptive statistics over
//!   samples and the recall/staleness arithmetic the discovery experiments
//!   report;
//! * [`InvariantReport`] / [`fingerprint`] — named pass/fail ledgers for
//!   chaos-soak convergence invariants and deterministic run fingerprints;
//! * [`RecoverySample`] / [`time_to_recovery`] — post-fault-window health
//!   probes and the time-to-recovery arithmetic for the rolling-chaos
//!   experiments;
//! * [`StalenessTracker`] — how long any replica's view stays divergent
//!   from its origin, for the federation-sync bounded-staleness claims;
//! * [`OverloadLedger`] — goodput, shed, and latency-percentile accounting
//!   for the admission-control/backpressure experiments;
//! * [`Graph`] and the generators in [`topologies`] — registry-network
//!   survivability analysis for the paper's topology discussion, following
//!   its references to complex-network robustness work (Albert/Jeong/Barabási
//!   error-and-attack tolerance; Thadakamaila et al. survivability metrics:
//!   "low characteristic path length, good clustering, and robustness to
//!   random and targeted failure").

mod graph;
mod invariants;
mod overload;
mod recovery;
mod staleness;
mod stats;

pub use graph::{topologies, Graph, RemovalReport};
pub use invariants::{fingerprint, InvariantReport};
pub use overload::OverloadLedger;
pub use recovery::{time_to_recovery, RecoverySample};
pub use staleness::StalenessTracker;
pub use stats::{ratio, recall, Summary};
