//! Descriptive statistics and discovery-quality arithmetic.

/// Five-number-ish summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
}

impl Summary {
    /// Computes a summary; returns all-zero for an empty sample.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self { n: 0, mean: 0.0, min: 0.0, max: 0.0, p50: 0.0, p95: 0.0 };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((n - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        Self { n, mean, min: sorted[0], max: sorted[n - 1], p50: pct(0.50), p95: pct(0.95) }
    }

    /// Summary over integer samples.
    pub fn of_counts<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Self::of(&v)
    }
}

/// `num/den` as a fraction, 0.0 when the denominator is zero.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Recall: fraction of `expected` items present in `got`. An empty
/// expectation counts as perfect recall.
pub fn recall<T: PartialEq>(expected: &[T], got: &[T]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let hit = expected.iter().filter(|e| got.contains(e)).count();
    hit as f64 / expected.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 3.0, "nearest-rank on even n rounds up");
    }

    #[test]
    fn summary_of_empty_is_zero() {
        assert_eq!(Summary::of(&[]).n, 0);
        assert_eq!(Summary::of(&[]).mean, 0.0);
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts([10u64, 20, 30]);
        assert_eq!(s.mean, 20.0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(3, 4), 0.75);
        assert_eq!(ratio(3, 0), 0.0);
    }

    #[test]
    fn recall_cases() {
        assert_eq!(recall(&[1, 2, 3], &[2, 3, 4]), 2.0 / 3.0);
        assert_eq!(recall::<u32>(&[], &[1]), 1.0);
        assert_eq!(recall(&[1], &[]), 0.0);
    }
}
