//! Staleness tracking for replicated views.
//!
//! A replica is *stale* while its view of some item diverges from the
//! origin's (missing, or at an older version). The interesting quantity for
//! an anti-entropy plane is not whether divergence ever happens — every
//! update opens a divergence window — but how long any single divergence
//! *persists*: bounded staleness is the convergence guarantee made
//! measurable.

use std::collections::BTreeMap;

/// Tracks, per key, how long it has been continuously divergent, and the
/// worst persistence ever observed (including divergences since resolved).
///
/// Feed it the full divergent key set at each observation instant; keys are
/// whatever identifies one replica's view of one item (e.g. a
/// `(registry, advert id)` pair).
#[derive(Clone, Debug, Default)]
pub struct StalenessTracker<K: Ord + Copy> {
    since: BTreeMap<K, u64>,
    max_observed: u64,
}

impl<K: Ord + Copy> StalenessTracker<K> {
    pub fn new() -> Self {
        Self { since: BTreeMap::new(), max_observed: 0 }
    }

    /// Records the set of keys divergent at `now`. Keys seen for the first
    /// time start their clock at `now`; keys no longer listed resolve (their
    /// final age is folded into the maximum). Returns the current worst age.
    ///
    /// Ages are measured between observation instants, so the resolution is
    /// the caller's sampling cadence.
    pub fn observe<I: IntoIterator<Item = K>>(&mut self, now: u64, divergent: I) -> u64 {
        let mut fresh = BTreeMap::new();
        for k in divergent {
            let since = self.since.get(&k).copied().unwrap_or(now);
            fresh.insert(k, since);
        }
        // Anything previously tracked but absent now has resolved; it was
        // last *seen* divergent one observation ago, but charging it until
        // `now` keeps the estimate conservative.
        for (_, since) in self.since.iter().filter(|(k, _)| !fresh.contains_key(k)) {
            self.max_observed = self.max_observed.max(now - since);
        }
        self.since = fresh;
        self.current_max_age(now)
    }

    /// Worst age among keys divergent right now.
    pub fn current_max_age(&self, now: u64) -> u64 {
        self.since.values().map(|&s| now.saturating_sub(s)).max().unwrap_or(0)
    }

    /// Worst divergence persistence ever observed, resolved or not — the
    /// number a bounded-staleness claim is checked against.
    pub fn max_observed(&self, now: u64) -> u64 {
        self.max_observed.max(self.current_max_age(now))
    }

    /// Number of keys divergent at the last observation.
    pub fn divergent_now(&self) -> usize {
        self.since.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ages_accumulate_while_divergent_and_fold_on_resolve() {
        let mut t = StalenessTracker::new();
        assert_eq!(t.observe(100, [1u32]), 0);
        assert_eq!(t.observe(150, [1]), 50);
        assert_eq!(t.observe(200, [1, 2]), 100);
        // Key 1 resolves: its 100 ms (plus the 200→250 gap) is remembered;
        // key 2 keeps aging.
        assert_eq!(t.observe(250, [2]), 50);
        assert_eq!(t.max_observed(250), 150);
        // Everything resolves; the maximum is retained.
        t.observe(300, []);
        assert_eq!(t.divergent_now(), 0);
        assert_eq!(t.current_max_age(300), 0);
        assert_eq!(t.max_observed(300), 150);
    }

    #[test]
    fn reappearing_key_restarts_its_clock() {
        let mut t = StalenessTracker::new();
        t.observe(0, [7u32]);
        t.observe(10, []);
        assert_eq!(t.observe(20, [7]), 0, "a resolved key that diverges again starts fresh");
        assert_eq!(t.max_observed(20), 10);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t: StalenessTracker<u64> = StalenessTracker::new();
        assert_eq!(t.current_max_age(5), 0);
        assert_eq!(t.max_observed(5), 0);
        assert_eq!(t.divergent_now(), 0);
    }
}
