//! Property-based tests for workload generation and churn plans.

use proptest::prelude::*;

use sds_protocol::ModelId;
use sds_simnet::NodeId;
use sds_workload::{battlefield, ChurnPlan, PopulationSpec, Workload};

fn arb_model() -> impl Strategy<Value = ModelId> {
    prop_oneof![Just(ModelId::Uri), Just(ModelId::Template), Just(ModelId::Semantic)]
}

proptest! {
    #[test]
    fn workload_counts_and_models_hold(
        model in arb_model(),
        services in 0usize..64,
        queries in 0usize..64,
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let (ont, classes) = battlefield();
        let w = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec { model, services, queries, generalization_rate: rate, seed },
        );
        prop_assert_eq!(w.descriptions.len(), services);
        prop_assert_eq!(w.queries.len(), queries);
        prop_assert!(w.descriptions.iter().all(|d| d.model() == model));
        prop_assert!(w.queries.iter().all(|q| q.model() == model));
    }

    #[test]
    fn workload_is_a_pure_function_of_its_spec(
        model in arb_model(),
        seed in any::<u64>(),
        rate in 0.0f64..=1.0,
    ) {
        let (ont, classes) = battlefield();
        let spec = PopulationSpec {
            model,
            services: 16,
            queries: 16,
            generalization_rate: rate,
            seed,
        };
        let a = Workload::generate(&ont, &classes, &spec);
        let b = Workload::generate(&ont, &classes, &spec);
        prop_assert_eq!(a.descriptions, b.descriptions);
        prop_assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn churn_plan_is_well_formed(
        n_nodes in 1usize..12,
        mean_up in 500.0f64..60_000.0,
        mean_down in 500.0f64..60_000.0,
        horizon in 1_000u64..300_000,
        seed in any::<u64>(),
    ) {
        let nodes: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();
        let plan = ChurnPlan::exponential(&nodes, mean_up, mean_down, horizon, seed);
        // Sorted, inside the horizon, strictly alternating per node starting
        // with a crash.
        prop_assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        prop_assert!(plan.events.iter().all(|e| e.at < horizon));
        for &node in &nodes {
            let flips: Vec<bool> =
                plan.events.iter().filter(|e| e.node == node).map(|e| e.up).collect();
            for (i, up) in flips.iter().enumerate() {
                prop_assert_eq!(*up, i % 2 == 1);
            }
        }
        // is_up_at is consistent with replaying the events.
        for &node in &nodes {
            let mut up = true;
            let mut t_prev = 0;
            for e in plan.events.iter().filter(|e| e.node == node) {
                // Just before this event the state is the previous one.
                if e.at > t_prev {
                    prop_assert_eq!(plan.is_up_at(node, e.at - 1), up);
                }
                up = e.up;
                t_prev = e.at;
                prop_assert_eq!(plan.is_up_at(node, e.at), up);
            }
        }
    }
}
