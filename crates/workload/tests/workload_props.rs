//! Property-based tests for workload generation and churn plans, run under
//! the in-workspace seeded harness (`sds_rand::check`).

use sds_rand::check::Checker;
use sds_rand::Rng;

use sds_protocol::ModelId;
use sds_simnet::NodeId;
use sds_workload::{battlefield, ChurnPlan, PopulationSpec, Workload};

fn arb_model(rng: &mut Rng) -> ModelId {
    *rng.choose(&[ModelId::Uri, ModelId::Template, ModelId::Semantic]).unwrap()
}

#[test]
fn workload_counts_and_models_hold() {
    Checker::new("workload_counts_and_models_hold").run(|rng| {
        let model = arb_model(rng);
        let services = rng.gen_range(0..64usize);
        let queries = rng.gen_range(0..64usize);
        let rate = rng.gen_f64();
        let seed = rng.next_u64();
        let (ont, classes) = battlefield();
        let w = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec { model, services, queries, generalization_rate: rate, seed },
        );
        assert_eq!(w.descriptions.len(), services);
        assert_eq!(w.queries.len(), queries);
        assert!(w.descriptions.iter().all(|d| d.model() == model));
        assert!(w.queries.iter().all(|q| q.model() == model));
    });
}

#[test]
fn workload_is_a_pure_function_of_its_spec() {
    Checker::new("workload_is_a_pure_function_of_its_spec").run(|rng| {
        let spec = PopulationSpec {
            model: arb_model(rng),
            services: 16,
            queries: 16,
            generalization_rate: rng.gen_f64(),
            seed: rng.next_u64(),
        };
        let (ont, classes) = battlefield();
        let a = Workload::generate(&ont, &classes, &spec);
        let b = Workload::generate(&ont, &classes, &spec);
        assert_eq!(a.descriptions, b.descriptions);
        assert_eq!(a.queries, b.queries);
    });
}

#[test]
fn churn_plan_is_well_formed() {
    Checker::new("churn_plan_is_well_formed").run(|rng| {
        let n_nodes = rng.gen_range(1..12usize);
        let mean_up = rng.gen_range(500..60_000u32) as f64;
        let mean_down = rng.gen_range(500..60_000u32) as f64;
        let horizon = rng.gen_range(1_000..300_000u64);
        let seed = rng.next_u64();
        let nodes: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();
        let plan = ChurnPlan::exponential(&nodes, mean_up, mean_down, horizon, seed);
        // Sorted, inside the horizon, strictly alternating per node starting
        // with a crash.
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(plan.events.iter().all(|e| e.at < horizon));
        for &node in &nodes {
            let flips: Vec<bool> =
                plan.events.iter().filter(|e| e.node == node).map(|e| e.up).collect();
            for (i, up) in flips.iter().enumerate() {
                assert_eq!(*up, i % 2 == 1);
            }
        }
        // is_up_at is consistent with replaying the events.
        for &node in &nodes {
            let mut up = true;
            let mut t_prev = 0;
            for e in plan.events.iter().filter(|e| e.node == node) {
                // Just before this event the state is the previous one.
                if e.at > t_prev {
                    assert_eq!(plan.is_up_at(node, e.at - 1), up);
                }
                up = e.up;
                t_prev = e.at;
                assert_eq!(plan.is_up_at(node, e.at), up);
            }
        }
    });
}
