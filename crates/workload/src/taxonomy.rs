//! Shared domain ontologies for the paper's two motivating scenarios.

use sds_semantic::{ClassId, Ontology};

/// Key classes of the battlefield taxonomy, for building profiles/requests
/// without string lookups.
#[derive(Clone, Copy, Debug)]
pub struct BattlefieldClasses {
    pub thing: ClassId,
    // Information products.
    pub sensor_data: ClassId,
    pub radar_data: ClassId,
    pub sonar_data: ClassId,
    pub eo_image: ClassId,
    pub track: ClassId,
    pub air_track: ClassId,
    pub surface_track: ClassId,
    pub position_report: ClassId,
    pub map_tile: ClassId,
    // Service categories.
    pub service: ClassId,
    pub surveillance: ClassId,
    pub radar_service: ClassId,
    pub sonar_service: ClassId,
    pub tracking: ClassId,
    pub blueforce_tracking: ClassId,
    pub logistics: ClassId,
    pub resupply: ClassId,
    pub messaging: ClassId,
    pub chat: ClassId,
    pub medevac: ClassId,
    // Common inputs.
    pub area_of_interest: ClassId,
    pub unit_id: ClassId,
}

/// The network-centric-battlefield taxonomy (MILCOM scenario): sensors and
/// the tactical services consuming/producing their data, with enough depth
/// that PlugIn/Subsumes matches occur naturally (a `RadarService` *is a*
/// `SurveillanceService`, `AirTrack` *is a* `Track`).
pub fn battlefield() -> (Ontology, BattlefieldClasses) {
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);

    let info = o.class("InformationProduct", &[thing]);
    let sensor_data = o.class("SensorData", &[info]);
    let radar_data = o.class("RadarData", &[sensor_data]);
    let sonar_data = o.class("SonarData", &[sensor_data]);
    let eo_image = o.class("EOImage", &[sensor_data]);
    let track = o.class("Track", &[info]);
    let air_track = o.class("AirTrack", &[track]);
    let surface_track = o.class("SurfaceTrack", &[track]);
    let position_report = o.class("PositionReport", &[info]);
    let map_tile = o.class("MapTile", &[info]);

    let service = o.class("Service", &[thing]);
    let surveillance = o.class("SurveillanceService", &[service]);
    let radar_service = o.class("RadarService", &[surveillance]);
    let sonar_service = o.class("SonarService", &[surveillance]);
    let tracking = o.class("TrackingService", &[service]);
    let blueforce_tracking = o.class("BlueForceTrackingService", &[tracking]);
    let logistics = o.class("LogisticsService", &[service]);
    let resupply = o.class("ResupplyService", &[logistics]);
    let messaging = o.class("MessagingService", &[service]);
    let chat = o.class("ChatService", &[messaging]);
    let medevac = o.class("MedevacService", &[service]);

    let area_of_interest = o.class("AreaOfInterest", &[thing]);
    let unit_id = o.class("UnitId", &[thing]);

    (
        o,
        BattlefieldClasses {
            thing,
            sensor_data,
            radar_data,
            sonar_data,
            eo_image,
            track,
            air_track,
            surface_track,
            position_report,
            map_tile,
            service,
            surveillance,
            radar_service,
            sonar_service,
            tracking,
            blueforce_tracking,
            logistics,
            resupply,
            messaging,
            chat,
            medevac,
            area_of_interest,
            unit_id,
        },
    )
}

/// Key classes of the crisis-management taxonomy.
#[derive(Clone, Copy, Debug)]
pub struct CrisisClasses {
    pub thing: ClassId,
    pub service: ClassId,
    pub casualty_report: ClassId,
    pub triage_report: ClassId,
    pub hazard_map: ClassId,
    pub weather_report: ClassId,
    pub victim_location: ClassId,
    pub medical: ClassId,
    pub triage: ClassId,
    pub ambulance_dispatch: ClassId,
    pub fire: ClassId,
    pub hazmat: ClassId,
    pub police: ClassId,
    pub perimeter_control: ClassId,
    pub search_and_rescue: ClassId,
    pub area_of_interest: ClassId,
}

/// The crisis-management taxonomy (the ICDE paper's §1 example: "members
/// from several agencies … have to cooperate"): medical, fire, police, and
/// SAR agencies with their information products.
pub fn crisis() -> (Ontology, CrisisClasses) {
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);

    let info = o.class("InformationProduct", &[thing]);
    let casualty_report = o.class("CasualtyReport", &[info]);
    let triage_report = o.class("TriageReport", &[casualty_report]);
    let hazard_map = o.class("HazardMap", &[info]);
    let weather_report = o.class("WeatherReport", &[info]);
    let victim_location = o.class("VictimLocation", &[info]);

    let service = o.class("Service", &[thing]);
    let medical = o.class("MedicalService", &[service]);
    let triage = o.class("TriageService", &[medical]);
    let ambulance_dispatch = o.class("AmbulanceDispatchService", &[medical]);
    let fire = o.class("FireService", &[service]);
    let hazmat = o.class("HazmatService", &[fire]);
    let police = o.class("PoliceService", &[service]);
    let perimeter_control = o.class("PerimeterControlService", &[police]);
    let search_and_rescue = o.class("SearchAndRescueService", &[service]);

    let area_of_interest = o.class("AreaOfInterest", &[thing]);

    (
        o,
        CrisisClasses {
            thing,
            service,
            casualty_report,
            triage_report,
            hazard_map,
            weather_report,
            victim_location,
            medical,
            triage,
            ambulance_dispatch,
            fire,
            hazmat,
            police,
            perimeter_control,
            search_and_rescue,
            area_of_interest,
        },
    )
}

/// A parametric balanced taxonomy: `roots` top classes, each expanded with
/// `branching` children per node down to `depth` levels. Used to scale the
/// reasoner/matchmaker benchmarks.
pub fn parametric(roots: usize, branching: usize, depth: usize) -> Ontology {
    let mut o = Ontology::new();
    let mut frontier: Vec<ClassId> = (0..roots).map(|r| o.class(&format!("R{r}"), &[])).collect();
    for level in 0..depth {
        let mut next = Vec::new();
        for (i, parent) in frontier.iter().enumerate() {
            for b in 0..branching {
                next.push(o.class(&format!("C{level}_{i}_{b}"), &[*parent]));
            }
        }
        frontier = next;
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_semantic::SubsumptionIndex;

    #[test]
    fn battlefield_subsumption_holds() {
        let (o, c) = battlefield();
        let idx = SubsumptionIndex::build(&o);
        assert!(idx.is_subclass(c.radar_service, c.surveillance));
        assert!(idx.is_subclass(c.radar_service, c.service));
        assert!(idx.is_subclass(c.air_track, c.track));
        assert!(!idx.is_subclass(c.track, c.air_track));
        assert!(!idx.is_subclass(c.chat, c.logistics));
        assert!(o.len() > 20);
    }

    #[test]
    fn crisis_subsumption_holds() {
        let (o, c) = crisis();
        let idx = SubsumptionIndex::build(&o);
        assert!(idx.is_subclass(c.triage, c.medical));
        assert!(idx.is_subclass(c.triage_report, c.casualty_report));
        assert!(!idx.is_subclass(c.hazmat, c.police));
    }

    #[test]
    fn parametric_size_is_geometric() {
        let o = parametric(2, 3, 2);
        // 2 roots + 2*3 + 6*3 = 26
        assert_eq!(o.len(), 26);
        let idx = SubsumptionIndex::build(&o);
        let leaf = o.lookup("C1_0_0").unwrap();
        let root = o.lookup("R0").unwrap();
        assert!(idx.is_subclass(leaf, root));
    }
}
