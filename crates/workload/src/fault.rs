//! Fault plans: scheduled network-fault windows, the chaos analogue of
//! [`crate::ChurnPlan`].
//!
//! Where churn flips node liveness, a fault plan degrades the *network*:
//! per-scope windows of loss, duplication, reordering, and payload
//! corruption, realized through the simulator's [`FaultProfile`] control
//! actions. Windows alternate with quiet periods per target (exponentially
//! distributed dwells, like churn), every window is closed by an explicit
//! reset, and [`FaultPlan::healed_by`] bounds when the network is clean
//! again — the anchor for post-heal convergence invariants.

use sds_protocol::{codec, DiscoveryMessage};
use sds_rand::Seed;
use sds_simnet::{ControlAction, FaultProfile, LanId, SimTime};

/// Where a fault window applies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultTarget {
    Lan(LanId),
    Wan,
    /// One *direction* of one WAN path: messages from the first LAN to the
    /// second. The reverse direction keeps the blanket WAN profile, so a
    /// window over `WanPair(a, b)` is an asymmetric fault (e.g. pings get
    /// through, replies are lost).
    WanPair(LanId, LanId),
}

/// One scheduled fault-profile change. A `FaultProfile::default()` profile
/// is a reset (the window closing).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultEvent {
    pub at: SimTime,
    pub target: FaultTarget,
    pub profile: FaultProfile,
}

/// Upper bounds for sampled fault intensities. Each window draws every knob
/// uniformly from `[0, max]`, so one plan mixes mild and harsh windows.
#[derive(Clone, Copy, Debug)]
pub struct FaultSeverity {
    pub max_loss: f64,
    pub max_duplicate: f64,
    pub max_corrupt: f64,
    pub max_reorder_jitter: SimTime,
}

impl Default for FaultSeverity {
    fn default() -> Self {
        Self { max_loss: 0.3, max_duplicate: 0.5, max_corrupt: 0.3, max_reorder_jitter: 400 }
    }
}

/// A deterministic schedule of fault windows over LANs and the WAN.
///
/// ```
/// use sds_simnet::LanId;
/// use sds_workload::fault::{FaultPlan, FaultSeverity};
///
/// let lans = [LanId(0), LanId(1)];
/// let plan =
///     FaultPlan::exponential(&lans, true, 20_000.0, 5_000.0, FaultSeverity::default(), 120_000, 42);
/// let same =
///     FaultPlan::exponential(&lans, true, 20_000.0, 5_000.0, FaultSeverity::default(), 120_000, 42);
/// assert_eq!(plan.events, same.events, "deterministic for a seed");
/// assert!(plan.healed_by() <= 120_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds an alternating quiet/faulty schedule per target: quiet for
    /// Exp(`mean_quiet_ms`), degraded for Exp(`mean_faulty_ms`), repeating
    /// until `horizon`. Every opened window is closed by a reset at or
    /// before `horizon`, so the network is guaranteed clean afterwards.
    pub fn exponential(
        lans: &[LanId],
        include_wan: bool,
        mean_quiet_ms: f64,
        mean_faulty_ms: f64,
        severity: FaultSeverity,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = Seed(seed).derive("workload.fault").rng();
        let targets: Vec<FaultTarget> = lans
            .iter()
            .map(|&l| FaultTarget::Lan(l))
            .chain(include_wan.then_some(FaultTarget::Wan))
            .collect();
        let mut events = Vec::new();
        for &target in &targets {
            let mut t = 0f64;
            let mut faulty = false;
            loop {
                let dwell =
                    if faulty { rng.exp(mean_faulty_ms) } else { rng.exp(mean_quiet_ms) };
                t += dwell.max(1.0);
                if faulty {
                    // Close the window (clamped: heal no later than horizon).
                    let at = (t as SimTime).min(horizon);
                    events.push(FaultEvent { at, target, profile: FaultProfile::default() });
                    faulty = false;
                    if t >= horizon as f64 {
                        break;
                    }
                } else {
                    if t >= horizon as f64 {
                        break;
                    }
                    faulty = true;
                    let profile = FaultProfile {
                        loss: rng.gen_f64() * severity.max_loss,
                        duplicate: rng.gen_f64() * severity.max_duplicate,
                        corrupt: rng.gen_f64() * severity.max_corrupt,
                        reorder_jitter: if severity.max_reorder_jitter > 0 {
                            rng.gen_range(0..=severity.max_reorder_jitter)
                        } else {
                            0
                        },
                    };
                    events.push(FaultEvent { at: t as SimTime, target, profile });
                }
            }
        }
        events.sort_by_key(|e| (e.at, e.target));
        Self { events }
    }

    /// Schedules every event on the simulator. Combine with
    /// [`corrupting_hook`] so corruption windows mutate real frames instead
    /// of black-holing them.
    pub fn apply<P: Clone + Send + 'static>(&self, sim: &mut sds_simnet::Sim<P>) {
        for e in &self.events {
            let action = match e.target {
                FaultTarget::Lan(lan) => ControlAction::SetLanFaults(lan, e.profile),
                FaultTarget::Wan => ControlAction::SetWanFaults(e.profile),
                FaultTarget::WanPair(from, to) => {
                    ControlAction::SetWanPairFaults(from, to, e.profile)
                }
            };
            sim.schedule(e.at, action);
        }
    }

    /// The time by which every fault window has been reset (0 for an empty
    /// plan). After this instant the network injects no further faults —
    /// though duplicated/delayed copies scheduled earlier may still drain.
    pub fn healed_by(&self) -> SimTime {
        self.events.iter().map(|e| e.at).max().unwrap_or(0)
    }

    /// The fault profile `target` is under at time `t`.
    pub fn active_at(&self, target: FaultTarget, t: SimTime) -> FaultProfile {
        self.events
            .iter()
            .filter(|e| e.target == target && e.at <= t)
            .next_back()
            .map(|e| e.profile)
            .unwrap_or_default()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The corruption hook for discovery-message simulations: runs the real
/// wire pipeline (encode → mutate bytes → decode). Frames the decoder
/// rejects return `None` and are dropped-and-counted by the simulator —
/// exactly what a hardened node does with a malformed datagram. Frames that
/// still decode are delivered as the (possibly absurd) message they now
/// spell, exercising handler totality.
pub fn corrupting_hook(
) -> impl FnMut(&mut sds_rand::Rng, &DiscoveryMessage) -> Option<DiscoveryMessage> + 'static {
    |rng, msg| {
        let bytes = codec::encode(msg);
        let mutated = codec::mutate_frame(rng, &bytes);
        codec::decode(&mutated).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::exponential(
            &[LanId(0), LanId(1)],
            true,
            10_000.0,
            4_000.0,
            FaultSeverity::default(),
            100_000,
            seed,
        )
    }

    #[test]
    fn windows_alternate_and_always_close() {
        let p = plan(7);
        assert!(!p.is_empty());
        assert!(p.events.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        for target in [FaultTarget::Lan(LanId(0)), FaultTarget::Lan(LanId(1)), FaultTarget::Wan] {
            let evs: Vec<&FaultEvent> =
                p.events.iter().filter(|e| e.target == target).collect();
            for (i, e) in evs.iter().enumerate() {
                // Even events open a window, odd events reset.
                assert_eq!(e.profile.is_quiet(), i % 2 == 1, "event {i} of {target:?}");
            }
            if let Some(last) = evs.last() {
                assert!(last.profile.is_quiet(), "{target:?} plan ends with a reset");
            }
        }
        assert!(p.healed_by() <= 100_000);
        // After healing, every target is quiet.
        for target in [FaultTarget::Lan(LanId(0)), FaultTarget::Lan(LanId(1)), FaultTarget::Wan] {
            assert!(p.active_at(target, p.healed_by()).is_quiet());
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        assert_eq!(plan(3).events, plan(3).events);
        assert_ne!(plan(3).events, plan(4).events);
    }

    #[test]
    fn sampled_profiles_respect_severity_bounds() {
        let sev = FaultSeverity {
            max_loss: 0.2,
            max_duplicate: 0.1,
            max_corrupt: 0.05,
            max_reorder_jitter: 50,
        };
        let p = FaultPlan::exponential(&[LanId(0)], false, 5_000.0, 5_000.0, sev, 500_000, 9);
        for e in &p.events {
            assert!(e.profile.loss <= sev.max_loss);
            assert!(e.profile.duplicate <= sev.max_duplicate);
            assert!(e.profile.corrupt <= sev.max_corrupt);
            assert!(e.profile.reorder_jitter <= sev.max_reorder_jitter);
        }
    }

    #[test]
    fn corrupting_hook_sometimes_mutates_and_sometimes_drops() {
        let mut rng = Seed(11).derive("test.corrupt").rng();
        let mut hook = corrupting_hook();
        // A message with payload bytes (advert id, version): single-byte
        // flips inside those fields still decode, but to a different message.
        let msg = sds_protocol::DiscoveryMessage::publishing(sds_protocol::PublishOp::Publish {
            advert: sds_protocol::Advertisement {
                id: sds_protocol::Uuid(0xDEAD_BEEF),
                provider: sds_simnet::NodeId(7),
                description: sds_protocol::Description::Uri("urn:radar".into()),
                version: 3,
            },
            lease_ms: 30_000,
        });
        let (mut delivered, mut dropped, mut changed) = (0u32, 0u32, 0u32);
        for _ in 0..200 {
            match hook(&mut rng, &msg) {
                Some(m) => {
                    delivered += 1;
                    if m != msg {
                        changed += 1;
                    }
                }
                None => dropped += 1,
            }
        }
        assert!(dropped > 0, "some mutations must break the frame");
        assert!(delivered > 0, "some frames must survive mutation");
        // Among survivors, at least some actually decode to a different
        // message (a pure pass-through hook would be useless chaos).
        assert!(changed > 0, "mutation must be able to change the message");
    }
}
