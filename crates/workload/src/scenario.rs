//! Scenario assembly: a full simulated deployment in one call.
//!
//! Realizes the paper's three topologies (its Fig. 1) over a multi-LAN
//! world, deploying a generated service population and wiring clients, so
//! experiments differ only in the [`Deployment`] value and measurement code.

use std::sync::Arc;

use sds_core::{
    AttachConfig, Bootstrap, ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode,
    RetryPolicy, ServiceConfig, ServiceNode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_semantic::{Ontology, SubsumptionIndex};
use sds_simnet::{LanId, NodeCapacity, NodeId, PartitionPlan, Sim, SimConfig, Topology};

use crate::oracle::Oracle;
use crate::population::{PopulationSpec, Workload};
use crate::taxonomy::{battlefield, BattlefieldClasses};

/// Which of the paper's topologies to deploy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Deployment {
    /// One registry on LAN 0; every node statically bound to it; no
    /// fallback. The registry is the single point of failure.
    Centralized,
    /// No registries at all; clients multicast, providers self-answer.
    Decentralized,
    /// The paper's architecture: `registries_per_lan` autonomous registries
    /// per LAN, federated over the WAN via seeding to the first registry.
    Federated { registries_per_lan: usize },
}

/// Everything needed to build a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    pub lans: usize,
    pub clients_per_lan: usize,
    pub deployment: Deployment,
    pub population: PopulationSpec,
    pub seed: u64,
    pub net: SimConfig,
    /// Template for registry nodes (seeds are filled in per deployment).
    pub registry: RegistryConfig,
    /// Template for service nodes (bootstrap overridden per deployment).
    pub service: ServiceConfig,
    /// Template for client nodes (bootstrap overridden per deployment).
    pub client: ClientConfig,
    /// How LANs are grouped into share-nothing execution domains.
    /// [`PartitionPlan::Single`] selects the legacy sequential engine;
    /// anything resolving to more than one domain runs the partitioned
    /// engine, whose event interleaving (and thus digests) differs from
    /// the sequential engine but is itself deterministic and independent
    /// of `workers`.
    pub partition: PartitionPlan,
    /// Worker threads for partitioned execution (ignored by `Single`).
    pub workers: usize,
    /// Retry-policy selection as data: `Some(policy)` applies it to every
    /// client and service role (query retries, ack retries, and attachment
    /// probing alike); `None` — the default — leaves the role templates
    /// exactly as given, so passive deployments stay passive.
    pub retry: Option<RetryPolicy>,
    /// Modeled processing budget installed on every registry node
    /// ([`Sim::set_node_capacity`]). `None` — the default — keeps the
    /// historical unbounded model.
    pub registry_capacity: Option<NodeCapacity>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            lans: 4,
            clients_per_lan: 1,
            deployment: Deployment::Federated { registries_per_lan: 1 },
            population: PopulationSpec::default(),
            seed: 0,
            net: SimConfig::default(),
            registry: RegistryConfig::default(),
            service: ServiceConfig::default(),
            client: ClientConfig::default(),
            partition: PartitionPlan::Single,
            workers: 1,
            retry: None,
            registry_capacity: None,
        }
    }
}

/// A built, running world.
pub struct Scenario {
    pub sim: Sim<DiscoveryMessage>,
    pub ontology: Ontology,
    pub classes: BattlefieldClasses,
    pub idx: Arc<SubsumptionIndex>,
    pub oracle: Oracle,
    pub lans: Vec<LanId>,
    pub registries: Vec<NodeId>,
    pub clients: Vec<NodeId>,
    /// Deployed services with their descriptions (the ground-truth world).
    pub services: Vec<(NodeId, Description)>,
    /// The query payloads of the generated workload.
    pub queries: Vec<QueryPayload>,
}

impl Scenario {
    pub fn build(cfg: ScenarioConfig) -> Self {
        let (ontology, classes) = battlefield();
        let idx = Arc::new(SubsumptionIndex::build(&ontology));
        let oracle = Oracle::new(idx.clone());
        let workload = Workload::generate(&ontology, &classes, &cfg.population);

        let mut topo = Topology::new();
        let lans: Vec<LanId> = (0..cfg.lans).map(|_| topo.add_lan()).collect();
        let mut sim: Sim<DiscoveryMessage> =
            Sim::new_partitioned(cfg.net.clone(), topo, cfg.seed, cfg.partition);
        sim.set_workers(cfg.workers);

        // Registries first, so their ids exist for static bootstrap.
        let mut registries = Vec::new();
        match &cfg.deployment {
            Deployment::Centralized => {
                let mut rc = cfg.registry.clone();
                rc.strategy = sds_core::ForwardStrategy::None;
                rc.seeds = Vec::new();
                registries.push(
                    sim.add_node(lans[0], Box::new(RegistryNode::new(rc, Some(idx.clone())))),
                );
            }
            Deployment::Decentralized => {}
            Deployment::Federated { registries_per_lan } => {
                for (li, &lan) in lans.iter().enumerate() {
                    for ri in 0..*registries_per_lan {
                        let mut rc = cfg.registry.clone();
                        rc.seeds = if li == 0 && ri == 0 {
                            Vec::new()
                        } else {
                            vec![registries[0]]
                        };
                        registries.push(sim.add_node(
                            lan,
                            Box::new(RegistryNode::new(rc, Some(idx.clone()))),
                        ));
                    }
                }
            }
        }

        if let Some(cap) = cfg.registry_capacity {
            for &r in &registries {
                sim.set_node_capacity(r, Some(cap));
            }
        }

        let (service_cfg, client_cfg) = cfg.role_configs(registries.first().copied());

        // Services round-robin across LANs.
        let mut services = Vec::new();
        for (i, description) in workload.descriptions.iter().enumerate() {
            let lan = lans[i % lans.len()];
            let node = sim.add_node(
                lan,
                Box::new(ServiceNode::new(
                    service_cfg.clone(),
                    vec![description.clone()],
                    Some(idx.clone()),
                )),
            );
            services.push((node, description.clone()));
        }

        // Clients.
        let mut clients = Vec::new();
        for &lan in &lans {
            for _ in 0..cfg.clients_per_lan {
                clients.push(sim.add_node(lan, Box::new(ClientNode::new(client_cfg.clone()))));
            }
        }

        Self {
            sim,
            ontology,
            classes,
            idx,
            oracle,
            lans,
            registries,
            clients,
            services,
            queries: workload.queries,
        }
    }

    /// Issues workload query `qi` from client `ci` (indices wrap).
    pub fn issue(&mut self, ci: usize, qi: usize, options: QueryOptions) {
        let client = self.clients[ci % self.clients.len()];
        let payload = self.queries[qi % self.queries.len()].clone();
        self.sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(ctx, payload, options);
        });
    }

    /// Ground truth at this instant: live providers that should match.
    pub fn expected_now(&self, payload: &QueryPayload) -> Vec<NodeId> {
        self.oracle
            .expected_providers(payload, &self.services, |n| self.sim.is_alive(n))
    }

    /// All completed queries of a client.
    pub fn completed(&self, ci: usize) -> &[sds_core::CompletedQuery] {
        &self.sim.handler::<ClientNode>(self.clients[ci % self.clients.len()]).unwrap().completed
    }
}

impl ScenarioConfig {
    fn role_configs(&self, first_registry: Option<NodeId>) -> (ServiceConfig, ClientConfig) {
        let mut service = self.service.clone();
        let mut client = self.client.clone();
        if let Some(policy) = self.retry {
            service.retry = policy;
            service.attach.retry = policy;
            client.retry = policy;
            client.attach.retry = policy;
        }
        match &self.deployment {
            Deployment::Centralized => {
                let r = first_registry.expect("centralized deployment has a registry");
                service.attach =
                    AttachConfig { bootstrap: Bootstrap::Static(r), ..service.attach.clone() };
                service.fallback_responder = false;
                client.attach =
                    AttachConfig { bootstrap: Bootstrap::Static(r), ..client.attach.clone() };
                client.fallback_query = false;
            }
            Deployment::Decentralized => {
                // Pure decentralized deployment: nobody looks for registries
                // (no probe retries, no liveness pings), queries go straight
                // to multicast and providers self-answer.
                service.fallback_responder = true;
                service.attach = AttachConfig {
                    bootstrap: Bootstrap::PassiveOnly,
                    ping_interval: 0,
                    ..service.attach.clone()
                };
                client.fallback_query = true;
                client.attach = AttachConfig {
                    bootstrap: Bootstrap::PassiveOnly,
                    ping_interval: 0,
                    ..client.attach.clone()
                };
            }
            Deployment::Federated { .. } => {}
        }
        (service, client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::ModelId;
    use sds_simnet::secs;

    fn cfg(deployment: Deployment) -> ScenarioConfig {
        ScenarioConfig {
            lans: 2,
            clients_per_lan: 1,
            deployment,
            population: PopulationSpec {
                model: ModelId::Semantic,
                services: 8,
                queries: 6,
                generalization_rate: 0.5,
                seed: 3,
            },
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn federated_scenario_discovers_across_lans() {
        let mut s = Scenario::build(cfg(Deployment::Federated { registries_per_lan: 1 }));
        assert_eq!(s.registries.len(), 2);
        assert_eq!(s.services.len(), 8);
        s.sim.run_until(secs(3));
        s.issue(0, 0, QueryOptions::default());
        s.sim.run_until(secs(9));
        let expected = s.expected_now(&s.queries[0].clone());
        let got: Vec<NodeId> =
            s.completed(0)[0].hits.iter().map(|h| h.advert.provider).collect();
        assert!(!expected.is_empty(), "workload produces matchable queries");
        assert_eq!(
            sds_metrics_recall(&expected, &got),
            1.0,
            "federated deployment finds all expected providers: expected {expected:?} got {got:?}"
        );
    }

    // Local copy to avoid a dev-dependency on sds-metrics.
    fn sds_metrics_recall(expected: &[NodeId], got: &[NodeId]) -> f64 {
        if expected.is_empty() {
            return 1.0;
        }
        expected.iter().filter(|e| got.contains(e)).count() as f64 / expected.len() as f64
    }

    #[test]
    fn centralized_scenario_works_until_registry_dies() {
        let mut s = Scenario::build(cfg(Deployment::Centralized));
        assert_eq!(s.registries.len(), 1);
        s.sim.run_until(secs(2));
        s.issue(0, 0, QueryOptions::default());
        s.sim.run_until(secs(8));
        assert!(!s.completed(0)[0].hits.is_empty());

        let r = s.registries[0];
        s.sim.crash_node(r);
        s.issue(0, 0, QueryOptions::default());
        s.sim.run_until(secs(16));
        assert!(
            s.completed(0)[1].hits.is_empty(),
            "single point of failure: no discovery after registry crash"
        );
    }

    #[test]
    fn retry_selection_defaults_to_passive_roles() {
        let c = ScenarioConfig::default();
        assert!(c.retry.is_none() && c.registry_capacity.is_none());
        let (service, client) = c.role_configs(None);
        assert!(!service.retry.enabled(), "default scenario keeps services passive");
        assert!(!client.retry.enabled(), "default scenario keeps clients passive");
        assert!(!service.attach.retry.enabled() && !client.attach.retry.enabled());

        let enabled = ScenarioConfig {
            retry: Some(RetryPolicy::standard()),
            ..ScenarioConfig::default()
        };
        let (s2, c2) = enabled.role_configs(None);
        assert!(s2.retry.enabled() && c2.retry.enabled());
        assert!(s2.attach.retry.enabled() && c2.attach.retry.enabled());
    }

    #[test]
    fn decentralized_scenario_has_no_registries_yet_discovers() {
        let mut s = Scenario::build(cfg(Deployment::Decentralized));
        assert!(s.registries.is_empty());
        s.sim.run_until(secs(2));
        // Decentralized reach is LAN-local: query something on LAN 0.
        // Find a workload query whose expected providers include LAN 0.
        let lan0 = s.lans[0];
        let qi = (0..s.queries.len())
            .find(|&qi| {
                s.expected_now(&s.queries[qi].clone())
                    .iter()
                    .any(|&p| s.sim.topology().lan_of(p) == lan0)
            })
            .expect("some query matches a LAN-0 provider");
        s.issue(0, qi, QueryOptions::default());
        s.sim.run_until(secs(8));
        assert!(!s.completed(0)[0].hits.is_empty(), "fallback multicast discovery works");
    }
}
