//! # sds-workload — scenarios, populations, and ground truth
//!
//! The paper motivates its architecture with two scenarios: the **network
//! centric battlefield** (MILCOM companion paper) and **crisis management**
//! ("members from several agencies … carry with them various devices that
//! spontaneously form a network where application layer services are
//! offered"). This crate generates those worlds:
//!
//! * [`taxonomy`] — shared domain ontologies ("upper-level ontologies and
//!   service taxonomies could be standardized"), both fixed (battlefield,
//!   crisis response) and parametric;
//! * [`population`] — service populations and query workloads over a
//!   taxonomy, in any description model, with controllable semantic spread;
//! * [`oracle`] — registry-free ground truth: which live providers *should*
//!   match a query, so experiments can report recall and staleness;
//! * [`churn`] — exponential on/off churn plans for transient nodes;
//! * [`fault`] — scheduled network-fault windows (loss, duplication,
//!   reordering, corruption) with a guaranteed heal time, for chaos soaks;
//! * [`rolling`] — rolling chaos: repeated fault windows with per-window
//!   time-to-recovery sampling, comparing the self-healing layer against a
//!   passive baseline;
//! * [`overload`] — offered-load schedules (flash crowds, diurnal waves,
//!   hot-registry storms) that push capacity-limited registries past their
//!   processing budget;
//! * [`scenario`] — assembles `sds-core` deployments (centralized /
//!   decentralized / federated) into ready-to-run simulations.

pub mod churn;
pub mod fault;
pub mod oracle;
pub mod overload;
pub mod population;
pub mod rolling;
pub mod scenario;
pub mod taxonomy;

pub use churn::ChurnPlan;
pub use fault::{corrupting_hook, FaultPlan, FaultSeverity, FaultTarget};
pub use rolling::{run_rolling, RollingChaosConfig, RollingReport, WindowReport};
pub use oracle::Oracle;
pub use overload::{DemandEvent, OverloadPlan};
pub use population::{PopulationSpec, QuerySpec, Workload};
pub use scenario::{Deployment, Scenario, ScenarioConfig};
pub use taxonomy::{battlefield, crisis, parametric, BattlefieldClasses, CrisisClasses};
