//! Overload plans: deterministic demand schedules that push registries past
//! their modeled processing budget.
//!
//! Where [`crate::ChurnPlan`] flips node liveness and [`crate::FaultPlan`]
//! degrades links, an overload plan shapes *offered load*: how many queries
//! the client population issues per interval, and where. Three canonical
//! shapes cover the overload experiments:
//!
//! * **flash crowd** — steady baseline demand with a storm window at an
//!   N× rate (everyone asks for the same thing at once);
//! * **diurnal wave** — a triangular swell between a trough and a peak rate,
//!   repeating with a fixed period (the slow tide that sizing must survive);
//! * **hot registry** — baseline demand everywhere plus a storm aimed at one
//!   LAN's clients, concentrating the surge on a single registry while the
//!   rest of the federation idles.
//!
//! Plans are pure data derived from a seed (stream `workload.overload`), so
//! the same seed always produces the same schedule; the scenario driver maps
//! each event to [`crate::Scenario::issue`] calls.

use sds_rand::Seed;
use sds_simnet::SimTime;

/// One burst of client demand: issue `queries` queries at `at`, spread over
/// the whole client population (`lan: None`) or pinned to the clients of one
/// LAN (`lan: Some(i)`, an index into [`crate::Scenario::lans`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DemandEvent {
    pub at: SimTime,
    pub lan: Option<usize>,
    pub queries: u32,
}

/// A deterministic offered-load schedule.
///
/// ```
/// use sds_workload::overload::OverloadPlan;
///
/// let plan = OverloadPlan::flash_crowd(4, 10, 1_000, 20_000, 30_000, 60_000, 42);
/// let same = OverloadPlan::flash_crowd(4, 10, 1_000, 20_000, 30_000, 60_000, 42);
/// assert_eq!(plan.events, same.events, "deterministic for a seed");
/// assert!(plan.offered_between(20_000, 30_000) > plan.offered_between(0, 10_000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct OverloadPlan {
    /// Demand bursts in time order.
    pub events: Vec<DemandEvent>,
    /// When the storm window opens (0 when the plan has no storm).
    pub storm_start: SimTime,
    /// When the storm window closes (0 when the plan has no storm).
    pub storm_end: SimTime,
}

impl OverloadPlan {
    /// Steady demand of ~`baseline` queries per `interval`, multiplied by
    /// `surge` inside `[storm_start, storm_end)`. Each interval's count is
    /// jittered ±25% so bursts do not phase-lock with protocol timers.
    pub fn flash_crowd(
        baseline: u32,
        surge: u32,
        interval: SimTime,
        storm_start: SimTime,
        storm_end: SimTime,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = Seed(seed).derive("workload.overload").rng();
        let interval = interval.max(1);
        let mut events = Vec::new();
        let mut t = interval;
        while t < horizon {
            let in_storm = t >= storm_start && t < storm_end;
            let rate = if in_storm { baseline.saturating_mul(surge.max(1)) } else { baseline };
            let queries = jitter_quarter(&mut rng, rate);
            if queries > 0 {
                events.push(DemandEvent { at: t, lan: None, queries });
            }
            t += interval;
        }
        Self { events, storm_start, storm_end }
    }

    /// A triangular wave between `trough` and `peak` queries per `interval`,
    /// repeating every `period` (rising for the first half, falling for the
    /// second). No storm window: `storm_start == storm_end == 0`.
    pub fn diurnal(
        trough: u32,
        peak: u32,
        period: SimTime,
        interval: SimTime,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = Seed(seed).derive("workload.overload").rng();
        let interval = interval.max(1);
        let period = period.max(2);
        let (lo, hi) = (trough.min(peak), trough.max(peak));
        let mut events = Vec::new();
        let mut t = interval;
        while t < horizon {
            // Position in the wave: 0 at the trough, `period/2` at the peak.
            let phase = t % period;
            let half = period / 2;
            let toward_peak = if phase <= half { phase } else { period - phase };
            let span = u64::from(hi - lo);
            let rate = lo + (span * toward_peak / half.max(1)) as u32;
            let queries = jitter_quarter(&mut rng, rate);
            if queries > 0 {
                events.push(DemandEvent { at: t, lan: None, queries });
            }
            t += interval;
        }
        Self { events, storm_start: 0, storm_end: 0 }
    }

    /// Baseline demand across the whole population, plus a storm of
    /// `baseline × surge` extra queries per interval issued only by the
    /// clients of LAN index `hot_lan` inside `[storm_start, storm_end)` —
    /// the surge lands on one registry while its peers stay lightly loaded.
    #[allow(clippy::too_many_arguments)]
    pub fn hot_registry(
        baseline: u32,
        surge: u32,
        hot_lan: usize,
        interval: SimTime,
        storm_start: SimTime,
        storm_end: SimTime,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = Seed(seed).derive("workload.overload").rng();
        let interval = interval.max(1);
        let mut events = Vec::new();
        let mut t = interval;
        while t < horizon {
            let queries = jitter_quarter(&mut rng, baseline);
            if queries > 0 {
                events.push(DemandEvent { at: t, lan: None, queries });
            }
            if t >= storm_start && t < storm_end {
                let extra = jitter_quarter(&mut rng, baseline.saturating_mul(surge.max(1)));
                if extra > 0 {
                    events.push(DemandEvent { at: t, lan: Some(hot_lan), queries: extra });
                }
            }
            t += interval;
        }
        Self { events, storm_start, storm_end }
    }

    /// Total queries the plan offers over its lifetime.
    pub fn total_queries(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.queries)).sum()
    }

    /// Queries offered in `[from, to)`.
    pub fn offered_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.events
            .iter()
            .filter(|e| e.at >= from && e.at < to)
            .map(|e| u64::from(e.queries))
            .sum()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// `rate` jittered uniformly into `[0.75 × rate, 1.25 × rate]` (exact at
/// rate 0; integer arithmetic, so deterministic across platforms).
fn jitter_quarter(rng: &mut sds_rand::Rng, rate: u32) -> u32 {
    if rate == 0 {
        return 0;
    }
    let spread = (rate / 2).max(1);
    let lo = rate.saturating_sub(spread / 2);
    rng.gen_range(u64::from(lo)..=u64::from(lo) + u64::from(spread)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_is_deterministic_and_surges() {
        let plan = |seed| OverloadPlan::flash_crowd(4, 10, 1_000, 20_000, 30_000, 60_000, seed);
        assert_eq!(plan(3).events, plan(3).events);
        assert_ne!(plan(3).events, plan(4).events);
        let p = plan(3);
        let calm = p.offered_between(0, 10_000);
        let storm = p.offered_between(20_000, 30_000);
        assert!(
            storm >= calm * 5,
            "10x surge must dominate jitter: calm={calm} storm={storm}"
        );
        assert!(p.events.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
    }

    #[test]
    fn diurnal_wave_rises_and_falls() {
        let p = OverloadPlan::diurnal(2, 40, 40_000, 1_000, 80_000, 7);
        // The quarter-period around each peak carries clearly more load than
        // the quarter-period around each trough.
        let peak_load = p.offered_between(15_000, 25_000);
        let trough_load = p.offered_between(35_000, 45_000);
        assert!(
            peak_load > trough_load * 3,
            "peak {peak_load} must dwarf trough {trough_load}"
        );
    }

    #[test]
    fn hot_registry_storm_targets_one_lan() {
        let p = OverloadPlan::hot_registry(4, 10, 2, 1_000, 20_000, 30_000, 60_000, 11);
        assert!(p.events.iter().all(|e| e.lan.is_none() || e.lan == Some(2)));
        let targeted: u64 = p
            .events
            .iter()
            .filter(|e| e.lan == Some(2))
            .map(|e| u64::from(e.queries))
            .sum();
        let broad: u64 =
            p.events.iter().filter(|e| e.lan.is_none()).map(|e| u64::from(e.queries)).sum();
        assert!(targeted > broad, "the surge concentrates on the hot LAN");
        // Targeted demand exists only inside the storm window.
        assert!(p
            .events
            .iter()
            .filter(|e| e.lan.is_some())
            .all(|e| e.at >= p.storm_start && e.at < p.storm_end));
    }
}
