//! Rolling chaos: repeated fault windows with measured recovery between
//! them.
//!
//! Where the chaos soak ([`crate::FaultPlan`] + churn) checks invariants
//! once, after everything healed, the rolling harness opens a fault window,
//! heals it, and then *samples* discovery health on a fixed cadence until
//! the system is whole again — producing a per-window time-to-recovery
//! (see [`sds_metrics::time_to_recovery`]). Windows rotate through the
//! failure modes the self-healing layer targets:
//!
//! * **asymmetric loss** — one direction of one WAN pair loses nearly every
//!   frame (pings arrive, replies vanish), so exactly one side of a
//!   federation link suspects the other;
//! * **pair cut** — one WAN pair is severed outright (partial partition:
//!   the rest of the WAN stays connected);
//! * **registry crash** — a non-seed registry dies for the window and
//!   revives at heal time, forcing re-attachment and republish.
//!
//! The same schedule runs with the resilience policies enabled
//! (`healing = true`: attach/client/service retries and registry probation
//! at [`sds_core::RetryPolicy::standard`]-like settings) or fully passive,
//! which is the R1 experiment comparison. Everything — the schedule, the
//! probes, both runs — is a pure function of the seed.

use std::fmt::Write as _;

use sds_core::{ClientNode, QueryOptions, RegistryNode, RetryPolicy, ServiceNode};
use sds_metrics::{fingerprint, time_to_recovery, RecoverySample};
use sds_protocol::ModelId;
use sds_simnet::{FaultProfile, SimTime};

use crate::scenario::{Deployment, Scenario, ScenarioConfig};
use crate::PopulationSpec;

/// Slack on lease expiry before an advert counts as stale (one purge
/// cadence of the default registry config).
const PURGE_SLACK: u64 = 2_000;

/// Parameters of one rolling-chaos run.
#[derive(Clone, Copy, Debug)]
pub struct RollingChaosConfig {
    pub seed: u64,
    /// Enable the self-healing layer (retry/backoff/failover/probation).
    /// `false` is the passive baseline with identical schedule and probes.
    pub healing: bool,
    /// Number of fault windows (failure modes rotate per window).
    pub windows: usize,
    /// Length of each fault window, ms.
    pub window_ms: SimTime,
    /// Quiet gap after each window in which recovery is sampled, ms.
    pub gap_ms: SimTime,
    /// Health-probe cadence during window and gap, ms.
    pub sample_every_ms: SimTime,
    /// Deadline of each probe query (must outlast registry aggregation).
    pub probe_timeout_ms: SimTime,
}

impl RollingChaosConfig {
    pub fn new(seed: u64, healing: bool) -> Self {
        Self {
            seed,
            healing,
            windows: 3,
            // Longer than a replica lease (≤ 30 s): under anti-entropy
            // replication a registry rides out shorter cuts on its replicas
            // alone, and nothing observable would ever break.
            window_ms: 40_000,
            gap_ms: 45_000,
            sample_every_ms: 3_000,
            probe_timeout_ms: 2_500,
        }
    }
}

/// One healed window and what recovery looked like after it.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Which failure mode this window exercised.
    pub kind: &'static str,
    /// When the window healed (samples before this don't count).
    pub window_end: SimTime,
    pub samples: Vec<RecoverySample>,
    /// Time from heal to the first fully-healthy sample; `None` = never
    /// recovered within the gap (a failed window).
    pub recovery_ms: Option<u64>,
}

/// Outcome of a full rolling-chaos run.
#[derive(Clone, Debug)]
pub struct RollingReport {
    pub windows: Vec<WindowReport>,
    /// Fingerprint of the full sample/counter transcript (determinism
    /// checks: same seed + same mode ⇒ same digest).
    pub digest: u64,
    /// Ack-retry publishes across all service nodes (0 in passive runs).
    pub retry_publishes: u64,
    /// Probationers reinstated across all registries (0 in passive runs).
    pub peers_reinstated: u64,
}

impl RollingReport {
    /// Sum of per-window recovery times; `None` when any window never
    /// recovered — callers must treat that as failure, not as zero.
    pub fn total_recovery_ms(&self) -> Option<u64> {
        self.windows.iter().map(|w| w.recovery_ms).sum()
    }

    /// Worst single window.
    pub fn max_recovery_ms(&self) -> Option<u64> {
        self.windows.iter().map(|w| w.recovery_ms).collect::<Option<Vec<_>>>()?.into_iter().max()
    }
}

fn scenario(cfg: &RollingChaosConfig) -> Scenario {
    let mut sc = ScenarioConfig {
        lans: 3,
        clients_per_lan: 1,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 9,
            queries: 6,
            generalization_rate: 0.5,
            seed: cfg.seed,
        },
        seed: cfg.seed,
        ..Default::default()
    };
    // Unicast-only querying: recall must come back through the registry
    // network, not the multicast fallback.
    sc.client.fallback_query = false;
    if cfg.healing {
        let standard = RetryPolicy::standard();
        sc.client.retry = RetryPolicy {
            // First checkpoint must outlast the registry aggregation window
            // (500 ms) plus WAN latency, or fault-free probes re-send.
            base_backoff: 1_000,
            ..standard
        };
        sc.client.attach.retry = standard;
        sc.service.retry = standard;
        sc.service.attach.retry = standard;
        // Probation must keep re-pinging across a whole window (suspicion
        // lands ~10-15 s in; 8 capped-backoff retries cover the remaining
        // ~25-30 s plus the heal), so give it a longer budget than the
        // standard policy.
        sc.registry.probation = RetryPolicy { max_retries: 8, ..standard };
    }
    Scenario::build(sc)
}

/// Issues every workload query at once (round-robin over clients), runs the
/// simulation past the probe deadline, and reduces the results to one
/// [`RecoverySample`].
fn probe(s: &mut Scenario, cfg: &RollingChaosConfig, transcript: &mut String) -> RecoverySample {
    let at = s.sim.now();
    // TTL 1: peers answer from their own store and do not relay, so recall
    // genuinely depends on every direct federation edge being intact —
    // multi-hop flooding must not mask a dismembered overlay.
    let options =
        QueryOptions { timeout: cfg.probe_timeout_ms, ttl: 1, ..QueryOptions::default() };
    // (client index, root seq, expected providers) per probe query.
    let mut issued = Vec::new();
    for qi in 0..s.queries.len() {
        let payload = s.queries[qi].clone();
        let expected = s.expected_now(&payload);
        let ci = qi % s.clients.len();
        let client = s.clients[ci];
        let mut seq = 0;
        s.sim.with_node::<ClientNode>(client, |c, ctx| {
            seq = c.issue_query(ctx, payload, options.clone());
        });
        issued.push((ci, seq, expected));
    }
    s.sim.run_until(at + cfg.probe_timeout_ms + 500);

    let (mut expected_total, mut found_total) = (0usize, 0usize);
    for (ci, seq, expected) in issued {
        let client = s.sim.handler::<ClientNode>(s.clients[ci]).unwrap();
        let done = client
            .completed
            .iter()
            .find(|d| d.seq == seq)
            .expect("probe query past its deadline has completed");
        expected_total += expected.len();
        found_total += expected
            .iter()
            .filter(|&&p| done.hits.iter().any(|h| h.advert.provider == p))
            .count();
    }
    let recall =
        if expected_total == 0 { 1.0 } else { found_total as f64 / expected_total as f64 };

    // Stale leases: an advert a live registry still stores past its lease
    // (plus one purge cadence) would answer queries with a dead provider.
    // Divergence: a live first-hand advert some other live registry holds
    // no live copy of. Replication masks divergence from recall (any one
    // intact peer answers for the whole federation), so count it directly —
    // a diverged registry is one partition away from wrong answers.
    let now = s.sim.now();
    let mut stale_leases = 0u64;
    let mut live_ids = Vec::new();
    let mut first_hand = Vec::new();
    for &r in &s.registries {
        if !s.sim.is_alive(r) {
            continue;
        }
        let node = s.sim.handler::<RegistryNode>(r).unwrap();
        let store = node.engine().store();
        stale_leases +=
            store.iter().filter(|stored| stored.lease_until + PURGE_SLACK <= now).count() as u64;
        let mut live = std::collections::BTreeSet::new();
        let mut fh = Vec::new();
        for stored in store.live(now) {
            live.insert(stored.advert.id);
            if stored.source == stored.advert.provider {
                fh.push(stored.advert.id);
            }
        }
        live_ids.push(live);
        first_hand.push(fh);
    }
    let mut divergent = 0u64;
    for (yi, fh) in first_hand.iter().enumerate() {
        for id in fh {
            divergent +=
                live_ids.iter().enumerate().filter(|(xi, l)| *xi != yi && !l.contains(id)).count()
                    as u64;
        }
    }
    let _ = writeln!(
        transcript,
        "probe at={at} recall={recall} found={found_total}/{expected_total} \
         stale={stale_leases} divergent={divergent}"
    );
    RecoverySample { at, recall, stale_leases, divergent }
}

/// Runs the full rolling-chaos schedule for one seed and mode.
pub fn run_rolling(cfg: &RollingChaosConfig) -> RollingReport {
    let mut s = scenario(cfg);
    let mut transcript = format!("seed={} healing={}\n", cfg.seed, cfg.healing);

    // Let the federation form and the first publishes land.
    s.sim.run_until(5_000);

    // A near-total, one-direction loss profile for the asymmetric windows.
    let lossy = FaultProfile { loss: 0.95, ..FaultProfile::default() };

    let mut windows = Vec::new();
    for w in 0..cfg.windows {
        let n = s.lans.len();
        // Rotate the faulted pair and the failure mode per window.
        let (a, b) = (s.lans[w % n], s.lans[(w + 1) % n]);
        let start = s.sim.now();
        let kind = match w % 3 {
            // Replies from b's side back to a vanish; a → b stays clean.
            0 => {
                s.sim.set_wan_pair_faults(b, a, lossy);
                "asymmetric-loss"
            }
            // Partial partition: exactly this pair is severed.
            1 => {
                s.sim.cut_wan_pair(a, b);
                "pair-cut"
            }
            // A non-seed registry dies for the whole window.
            _ => {
                s.sim.crash_node(s.registries[1]);
                "registry-crash"
            }
        };
        let _ = writeln!(transcript, "window {w} kind={kind} start={start}");

        // Probes keep flowing during the window (they exercise the retry
        // paths under fire); their samples precede `window_end` and are
        // ignored by the recovery clock.
        let mut samples = Vec::new();
        while s.sim.now() < start + cfg.window_ms {
            samples.push(probe(&mut s, cfg, &mut transcript));
            let next = samples.last().unwrap().at + cfg.sample_every_ms;
            s.sim.run_until(next);
        }

        // Heal.
        match w % 3 {
            0 => s.sim.set_wan_pair_faults(b, a, FaultProfile::default()),
            1 => s.sim.heal_wan_pair(a, b),
            _ => s.sim.revive_node(s.registries[1]),
        }
        let window_end = s.sim.now();

        // Sample the gap until healthy (keep sampling a little past
        // recovery so the transcript shows it holding).
        while s.sim.now() < window_end + cfg.gap_ms {
            samples.push(probe(&mut s, cfg, &mut transcript));
            if time_to_recovery(window_end, &samples).is_some()
                && samples.last().map(|x| x.at >= window_end + 2 * cfg.sample_every_ms) == Some(true)
            {
                break;
            }
            let next = samples.last().unwrap().at + cfg.sample_every_ms;
            s.sim.run_until(next);
        }
        let recovery_ms = time_to_recovery(window_end, &samples);
        let _ = writeln!(transcript, "window {w} end={window_end} recovery={recovery_ms:?}");
        windows.push(WindowReport { kind, window_end, samples, recovery_ms });

        // Quiet buffer before the next window so windows never overlap.
        let resume = s.sim.now() + cfg.sample_every_ms;
        s.sim.run_until(resume);
    }

    let retry_publishes: u64 = s
        .services
        .iter()
        .filter_map(|&(n, _)| s.sim.handler::<ServiceNode>(n))
        .map(|svc| svc.stats.retry_publishes)
        .sum();
    let peers_reinstated: u64 = s
        .registries
        .iter()
        .filter_map(|&r| s.sim.handler::<RegistryNode>(r))
        .map(|reg| reg.stats.peers_reinstated)
        .sum();
    let st = s.sim.stats();
    let _ = writeln!(
        transcript,
        "retry_publishes={retry_publishes} reinstated={peers_reinstated} dropped={} \
         wan_cut_drops={} lan={} wan={}",
        st.dropped_messages, st.wan_cut_drops, st.lan_messages, st.wan_messages
    );

    RollingReport { windows, digest: fingerprint(&transcript), retry_publishes, peers_reinstated }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_schedule_is_deterministic_per_seed_and_mode() {
        let mut cfg = RollingChaosConfig::new(5, true);
        cfg.windows = 1;
        let a = run_rolling(&cfg);
        let b = run_rolling(&cfg);
        assert_eq!(a.digest, b.digest, "same seed+mode must reproduce exactly");
        cfg.healing = false;
        let c = run_rolling(&cfg);
        assert_ne!(a.digest, c.digest, "healing and passive runs differ under faults");
    }

    #[test]
    fn passive_runs_never_touch_the_healing_machinery() {
        let mut cfg = RollingChaosConfig::new(2, false);
        cfg.windows = 2;
        let r = run_rolling(&cfg);
        assert_eq!(r.retry_publishes, 0, "passive services must not retry");
        assert_eq!(r.peers_reinstated, 0, "passive registries must not probation");
    }
}
