//! Churn plans: scheduled crash/revive sequences modelling transient nodes.
//!
//! "Dynamic environments … may lead to frequent change in both service
//! metadata and the topology of the nodes that are part of the system …
//! both service nodes and registry nodes can come and go." Lifetimes and
//! downtimes are exponentially distributed (the standard memoryless churn
//! model), sampled by inverse CDF from the seeded RNG.

use sds_rand::Seed;

use sds_simnet::{ControlAction, NodeId, SimTime};

/// One scheduled liveness flip.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChurnEvent {
    pub at: SimTime,
    pub node: NodeId,
    /// `true` = revive, `false` = crash.
    pub up: bool,
}

/// A deterministic churn schedule over a set of nodes.
///
/// ```
/// use sds_simnet::NodeId;
/// use sds_workload::ChurnPlan;
///
/// let nodes = [NodeId(1), NodeId(2)];
/// let plan = ChurnPlan::exponential(&nodes, 20_000.0, 10_000.0, 120_000, 42);
/// // Nodes start up; the schedule alternates crash/revive per node.
/// assert!(plan.is_up_at(NodeId(1), 0));
/// let same = ChurnPlan::exponential(&nodes, 20_000.0, 10_000.0, 120_000, 42);
/// assert_eq!(plan.events, same.events, "deterministic for a seed");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Builds an alternating up/down schedule for each node: up for
    /// Exp(`mean_up_ms`), down for Exp(`mean_down_ms`), repeating until
    /// `horizon`. Nodes start up; the first event of each node is a crash.
    pub fn exponential(
        nodes: &[NodeId],
        mean_up_ms: f64,
        mean_down_ms: f64,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = Seed(seed).derive("workload.churn").rng();
        let mut events = Vec::new();
        for &node in nodes {
            let mut t = 0f64;
            let mut up = true;
            loop {
                let dwell = if up { rng.exp(mean_up_ms) } else { rng.exp(mean_down_ms) };
                t += dwell.max(1.0);
                if t >= horizon as f64 {
                    break;
                }
                up = !up;
                events.push(ChurnEvent { at: t as SimTime, node, up });
            }
        }
        events.sort_by_key(|e| (e.at, e.node));
        Self { events }
    }

    /// A one-shot plan: permanently crash each node at its given time.
    pub fn crashes(schedule: &[(SimTime, NodeId)]) -> Self {
        let mut events: Vec<ChurnEvent> =
            schedule.iter().map(|&(at, node)| ChurnEvent { at, node, up: false }).collect();
        events.sort_by_key(|e| (e.at, e.node));
        Self { events }
    }

    /// Schedules every event on the simulator.
    pub fn apply<P: Clone + Send + 'static>(&self, sim: &mut sds_simnet::Sim<P>) {
        for e in &self.events {
            let action =
                if e.up { ControlAction::Revive(e.node) } else { ControlAction::Crash(e.node) };
            sim.schedule(e.at, action);
        }
    }

    /// Whether `node` is up at time `t` under this plan (nodes start up).
    pub fn is_up_at(&self, node: NodeId, t: SimTime) -> bool {
        self.events
            .iter().rfind(|e| e.node == node && e.at <= t)
            .is_none_or(|e| e.up)
    }

    /// Expected fraction of flips per node (diagnostic).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_and_sorts() {
        let nodes = [NodeId(1), NodeId(2)];
        let plan = ChurnPlan::exponential(&nodes, 10_000.0, 5_000.0, 100_000, 7);
        assert!(!plan.is_empty());
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        // Per node, flips alternate starting with a crash.
        for &n in &nodes {
            let flips: Vec<bool> =
                plan.events.iter().filter(|e| e.node == n).map(|e| e.up).collect();
            for (i, up) in flips.iter().enumerate() {
                assert_eq!(*up, i % 2 == 1, "event {i} of node {n}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let nodes = [NodeId(1)];
        let a = ChurnPlan::exponential(&nodes, 5_000.0, 5_000.0, 50_000, 3);
        let b = ChurnPlan::exponential(&nodes, 5_000.0, 5_000.0, 50_000, 3);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn is_up_at_tracks_flips() {
        let plan = ChurnPlan::crashes(&[(100, NodeId(1))]);
        assert!(plan.is_up_at(NodeId(1), 99));
        assert!(!plan.is_up_at(NodeId(1), 100));
        assert!(plan.is_up_at(NodeId(2), 1_000_000), "unmentioned nodes stay up");
    }

    #[test]
    fn shorter_mean_lifetime_means_more_events() {
        let nodes: Vec<NodeId> = (0..20).map(NodeId).collect();
        let fast = ChurnPlan::exponential(&nodes, 2_000.0, 2_000.0, 200_000, 5);
        let slow = ChurnPlan::exponential(&nodes, 50_000.0, 2_000.0, 200_000, 5);
        assert!(fast.len() > 2 * slow.len(), "{} vs {}", fast.len(), slow.len());
    }
}
