//! Registry-free ground truth for recall and staleness measurements.
//!
//! Uses the very same evaluator plug-ins the registries use, so "expected"
//! is defined by the system's own matching semantics, evaluated over the
//! true world state instead of any registry's (possibly stale) copy.

use std::sync::Arc;

use sds_protocol::{Advertisement, Description, QueryPayload, Uuid};
use sds_registry::{ModelEvaluator, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::SubsumptionIndex;
use sds_simnet::NodeId;

/// Ground-truth matcher over the shared ontology.
pub struct Oracle {
    evaluators: Vec<Box<dyn ModelEvaluator>>,
}

impl Oracle {
    pub fn new(idx: Arc<SubsumptionIndex>) -> Self {
        Self {
            evaluators: vec![
                Box::new(UriEvaluator),
                Box::new(TemplateEvaluator),
                Box::new(SemanticEvaluator::new(idx)),
            ],
        }
    }

    /// Whether `payload` matches `description` under the system's own
    /// matching semantics.
    pub fn matches(&self, payload: &QueryPayload, description: &Description) -> bool {
        let advert = Advertisement {
            id: Uuid::NIL,
            provider: NodeId(0),
            description: description.clone(),
            version: 1,
        };
        self.evaluators
            .iter()
            .filter(|e| e.model() == payload.model())
            .any(|e| e.evaluate(payload, &advert).is_some())
    }

    /// The providers among `services` that should answer `payload`,
    /// restricted by a liveness predicate (pass `|_| true` for "ever").
    pub fn expected_providers(
        &self,
        payload: &QueryPayload,
        services: &[(NodeId, Description)],
        alive: impl Fn(NodeId) -> bool,
    ) -> Vec<NodeId> {
        services
            .iter()
            .filter(|(node, desc)| alive(*node) && self.matches(payload, desc))
            .map(|(node, _)| *node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::battlefield;
    use sds_semantic::{ServiceProfile, ServiceRequest};

    #[test]
    fn oracle_applies_subsumption() {
        let (ont, c) = battlefield();
        let oracle = Oracle::new(Arc::new(SubsumptionIndex::build(&ont)));
        let radar = Description::Semantic(ServiceProfile::new("r", c.radar_service));
        let chat = Description::Semantic(ServiceProfile::new("c", c.chat));
        let want_surveillance =
            QueryPayload::Semantic(ServiceRequest::for_category(c.surveillance));
        assert!(oracle.matches(&want_surveillance, &radar));
        assert!(!oracle.matches(&want_surveillance, &chat));
        // Cross-model payloads never match.
        assert!(!oracle.matches(&QueryPayload::Uri("urn:svc:RadarService".into()), &radar));
    }

    #[test]
    fn expected_providers_respects_liveness() {
        let (ont, c) = battlefield();
        let oracle = Oracle::new(Arc::new(SubsumptionIndex::build(&ont)));
        let services = vec![
            (NodeId(1), Description::Uri("urn:a".into())),
            (NodeId(2), Description::Uri("urn:a".into())),
            (NodeId(3), Description::Uri("urn:b".into())),
        ];
        let q = QueryPayload::Uri("urn:a".into());
        assert_eq!(oracle.expected_providers(&q, &services, |_| true), vec![NodeId(1), NodeId(2)]);
        assert_eq!(
            oracle.expected_providers(&q, &services, |n| n != NodeId(1)),
            vec![NodeId(2)]
        );
        let _ = c;
    }
}
