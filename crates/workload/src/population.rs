//! Service populations and query workloads over the battlefield taxonomy.

use sds_rand::{Rng, Seed};

use sds_protocol::{Description, DescriptionTemplate, ModelId, QueryPayload};
use sds_semantic::{ClassId, Ontology, QosKey, ServiceProfile, ServiceRequest};

use crate::taxonomy::BattlefieldClasses;

/// One archetype of deployable service: category, outputs, required inputs.
#[derive(Clone, Debug)]
struct Archetype {
    category: ClassId,
    outputs: Vec<ClassId>,
    inputs: Vec<ClassId>,
}

fn archetypes(c: &BattlefieldClasses) -> Vec<Archetype> {
    vec![
        Archetype {
            category: c.radar_service,
            outputs: vec![c.radar_data, c.air_track],
            inputs: vec![c.area_of_interest],
        },
        Archetype {
            category: c.sonar_service,
            outputs: vec![c.sonar_data, c.surface_track],
            inputs: vec![c.area_of_interest],
        },
        Archetype {
            category: c.blueforce_tracking,
            outputs: vec![c.position_report],
            inputs: vec![c.unit_id],
        },
        Archetype { category: c.chat, outputs: vec![], inputs: vec![] },
        Archetype {
            category: c.resupply,
            outputs: vec![c.position_report],
            inputs: vec![c.unit_id],
        },
        Archetype { category: c.medevac, outputs: vec![c.position_report], inputs: vec![c.unit_id] },
    ]
}

/// Parameters of a generated workload.
#[derive(Clone, Debug)]
pub struct PopulationSpec {
    /// Description model for services AND queries.
    pub model: ModelId,
    /// Number of service descriptions.
    pub services: usize,
    /// Number of query payloads.
    pub queries: usize,
    /// For the semantic model: probability that a query asks for a *parent*
    /// concept (requiring subsumption to answer); 0.0 makes every query an
    /// exact leaf-category query. Ignored by the other models.
    pub generalization_rate: f64,
    pub seed: u64,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        Self {
            model: ModelId::Semantic,
            services: 40,
            queries: 50,
            generalization_rate: 0.5,
            seed: 0,
        }
    }
}

/// A generated workload: descriptions to deploy and queries to run.
#[derive(Clone, Debug)]
pub struct Workload {
    pub descriptions: Vec<Description>,
    pub queries: Vec<QueryPayload>,
}

/// A single query template helper (exported for hand-built experiments).
#[derive(Clone, Debug)]
pub struct QuerySpec {
    pub payload: QueryPayload,
    /// True when answering requires subsumption reasoning (the paper's
    /// semantic-advantage case).
    pub needs_subsumption: bool,
}

impl Workload {
    /// Generates a population and query set over the battlefield taxonomy.
    pub fn generate(ont: &Ontology, classes: &BattlefieldClasses, spec: &PopulationSpec) -> Self {
        let mut rng = Seed(spec.seed).derive("workload.population").rng();
        let pool = archetypes(classes);

        let descriptions: Vec<Description> = (0..spec.services)
            .map(|i| {
                let a = &pool[rng.gen_range(0..pool.len())];
                match spec.model {
                    ModelId::Uri => Description::Uri(type_uri(ont, a.category)),
                    ModelId::Template => Description::Template(DescriptionTemplate {
                        name: Some(format!("svc-{i}")),
                        type_uri: Some(type_uri(ont, a.category)),
                        attrs: vec![("area".into(), format!("sector-{}", rng.gen_range(0..4u32)))],
                    }),
                    ModelId::Semantic => Description::Semantic(
                        ServiceProfile::new(format!("svc-{i}"), a.category)
                            .with_outputs(&a.outputs)
                            .with_inputs(&a.inputs)
                            .with_qos(QosKey::Accuracy, 0.5 + 0.5 * rng.gen_f64()),
                    ),
                }
            })
            .collect();

        let queries: Vec<QueryPayload> =
            (0..spec.queries).map(|_| Self::gen_query(ont, classes, spec, &pool, &mut rng)).collect();

        Self { descriptions, queries }
    }

    fn gen_query(
        ont: &Ontology,
        classes: &BattlefieldClasses,
        spec: &PopulationSpec,
        pool: &[Archetype],
        rng: &mut Rng,
    ) -> QueryPayload {
        let a = &pool[rng.gen_range(0..pool.len())];
        match spec.model {
            ModelId::Uri => QueryPayload::Uri(type_uri(ont, a.category)),
            ModelId::Template => QueryPayload::Template(DescriptionTemplate {
                type_uri: Some(type_uri(ont, a.category)),
                ..Default::default()
            }),
            ModelId::Semantic => {
                let generalize = rng.gen_bool(spec.generalization_rate);
                let category = if generalize {
                    // Ask for the direct parent (e.g. SurveillanceService
                    // instead of RadarService): only subsumption finds it.
                    ont.parents(a.category).first().copied().unwrap_or(a.category)
                } else {
                    a.category
                };
                QueryPayload::Semantic(
                    ServiceRequest::for_category(category).with_provided_inputs(&[
                        classes.area_of_interest,
                        classes.unit_id,
                    ]),
                )
            }
        }
    }
}

/// The pre-agreed service-type URI of a category class.
pub fn type_uri(ont: &Ontology, category: ClassId) -> String {
    format!("urn:svc:{}", ont.name(category))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::battlefield;

    #[test]
    fn generates_requested_counts_in_each_model() {
        let (ont, classes) = battlefield();
        for model in [ModelId::Uri, ModelId::Template, ModelId::Semantic] {
            let w = Workload::generate(
                &ont,
                &classes,
                &PopulationSpec { model, services: 12, queries: 7, ..Default::default() },
            );
            assert_eq!(w.descriptions.len(), 12);
            assert_eq!(w.queries.len(), 7);
            assert!(w.descriptions.iter().all(|d| d.model() == model));
            assert!(w.queries.iter().all(|q| q.model() == model));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (ont, classes) = battlefield();
        let spec = PopulationSpec { seed: 42, ..Default::default() };
        let a = Workload::generate(&ont, &classes, &spec);
        let b = Workload::generate(&ont, &classes, &spec);
        assert_eq!(a.descriptions, b.descriptions);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn generalization_rate_controls_parent_queries() {
        let (ont, classes) = battlefield();
        let exact = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec { generalization_rate: 0.0, queries: 30, seed: 1, ..Default::default() },
        );
        // With rate 0, every semantic query names a leaf archetype category.
        for q in &exact.queries {
            let QueryPayload::Semantic(r) = q else { panic!("semantic") };
            let cat = r.category.unwrap();
            assert!(
                ![classes.surveillance, classes.tracking, classes.service, classes.messaging,
                  classes.logistics]
                    .contains(&cat),
                "unexpected parent category {}",
                ont.name(cat)
            );
        }
        let general = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec { generalization_rate: 1.0, queries: 30, seed: 1, ..Default::default() },
        );
        let parents = general
            .queries
            .iter()
            .filter(|q| {
                let QueryPayload::Semantic(r) = q else { return false };
                let cat = r.category.unwrap();
                [classes.surveillance, classes.tracking, classes.service, classes.messaging,
                 classes.logistics]
                    .contains(&cat)
            })
            .count();
        assert!(parents >= 25, "most queries generalized, got {parents}/30");
    }
}
