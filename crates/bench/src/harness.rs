//! A minimal wall-clock benchmarking harness.
//!
//! Replaces `criterion` for this workspace's needs: named benchmark groups,
//! closure timing with automatic iteration-count calibration, and a
//! per-benchmark summary (median/min/mean time per iteration) printed as a
//! table row. No statistics engine, no plotting, no external dependencies —
//! the microbenchmarks exist to catch order-of-magnitude regressions in hot
//! paths, not to resolve single-digit-percent effects.
//!
//! ```no_run
//! use sds_bench::harness::{black_box, Harness};
//!
//! let mut h = Harness::from_args();
//! let mut g = h.group("math");
//! g.bench("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
//! ```
//!
//! Invocation (`cargo bench -- <filter>`): the first non-flag argument is a
//! substring filter over `group/name`; `SDS_BENCH_QUICK=1` cuts measurement
//! time ~10× for smoke runs.

use std::time::{Duration, Instant};

/// An identity function the optimizer must assume reads and writes its
/// argument, preventing benchmarked code from being folded away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the supplied
/// closure over the calibrated iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times and records the total elapsed wall time. The
    /// result of every call is passed through [`black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Measurement budget: how long calibration doubles for and how long each
/// sample aims to run.
#[derive(Clone, Copy)]
struct Budget {
    calibration: Duration,
    sample: Duration,
    samples: u32,
}

impl Budget {
    fn from_env() -> Self {
        if std::env::var_os("SDS_BENCH_QUICK").is_some() {
            Self { calibration: Duration::from_millis(2), sample: Duration::from_millis(5), samples: 3 }
        } else {
            Self { calibration: Duration::from_millis(20), sample: Duration::from_millis(50), samples: 10 }
        }
    }
}

/// The top-level runner: owns the name filter and the output format.
pub struct Harness {
    filter: Option<String>,
    budget: Budget,
    ran: usize,
}

impl Harness {
    /// Builds a runner from the process arguments: flags (`--bench`, which
    /// `cargo bench` appends) are ignored, and the first free argument
    /// becomes a substring filter over `group/name`.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self::with_filter(filter)
    }

    /// A runner with an explicit filter (`None` runs everything).
    pub fn with_filter(filter: Option<String>) -> Self {
        Self { filter, budget: Budget::from_env(), ran: 0 }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, name: name.to_string(), printed_header: false }
    }

    /// Prints the closing line; call once after the last group.
    pub fn finish(self) {
        println!("\n{} benchmark(s) run", self.ran);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) -> Option<Measurement> {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return None;
            }
        }
        let budget = self.budget;
        // Calibrate: double the iteration count until one timed batch
        // exceeds the calibration budget, so per-iteration cost is known to
        // within ~2× before sampling starts.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= budget.calibration || iters >= 1 << 40 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let sample_iters = ((budget.sample.as_secs_f64() / per_iter.max(1e-12)) as u64).max(1);
        let mut per_iter_samples: Vec<f64> = (0..budget.samples)
            .map(|_| {
                let mut b = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_secs_f64() / sample_iters as f64
            })
            .collect();
        per_iter_samples.sort_by(f64::total_cmp);
        self.ran += 1;
        Some(Measurement {
            min: per_iter_samples[0],
            median: per_iter_samples[per_iter_samples.len() / 2],
            mean: per_iter_samples.iter().sum::<f64>() / per_iter_samples.len() as f64,
            iters: sample_iters,
            samples: budget.samples,
        })
    }
}

/// A named group of benchmarks sharing a printed header.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    printed_header: bool,
}

impl Group<'_> {
    /// Measures `f` under the name `group/id` and prints one result row.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let full_name = format!("{}/{id}", self.name);
        if let Some(m) = self.harness.run_one(&full_name, f) {
            if !self.printed_header {
                println!("\n== {} ==", self.name);
                self.printed_header = true;
            }
            println!(
                "  {:44} {:>12}/iter  (min {}, mean {}; {} iters x {} samples)",
                full_name,
                fmt_seconds(m.median),
                fmt_seconds(m.min),
                fmt_seconds(m.mean),
                m.iters,
                m.samples,
            );
        }
    }
}

struct Measurement {
    min: f64,
    median: f64,
    mean: f64,
    iters: u64,
    samples: u32,
}

/// Formats a duration in seconds with an auto-selected unit.
fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Harness {
        let mut h = Harness::with_filter(None);
        // Tests must not depend on the wall clock: use the smallest budget.
        h.budget = Budget { calibration: Duration::from_micros(10), sample: Duration::from_micros(50), samples: 2 };
        h
    }

    #[test]
    fn bencher_runs_exactly_iters_times() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 37, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO || count == 37);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut h = quiet();
        h.filter = Some("match-me".into());
        let mut ran_skipped = false;
        let mut ran_matching = false;
        {
            let mut g = h.group("grp");
            g.bench("other", |b| b.iter(|| ran_skipped = true));
            g.bench("match-me", |b| b.iter(|| ran_matching = true));
        }
        assert!(!ran_skipped, "filtered-out benchmark must not run");
        assert!(ran_matching);
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn measurement_produces_ordered_stats() {
        let mut h = quiet();
        let m = h.run_one("g/busy", |b| b.iter(|| black_box((0..100u64).sum::<u64>()))).unwrap();
        assert!(m.min > 0.0);
        assert!(m.min <= m.median);
        assert!(m.iters >= 1);
    }

    #[test]
    fn fmt_seconds_picks_sane_units() {
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(2.5e-3), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.500 us");
        assert_eq!(fmt_seconds(2.5e-8), "25.0 ns");
    }
}
