//! A minimal wall-clock benchmarking harness.
//!
//! Replaces `criterion` for this workspace's needs: named benchmark groups,
//! closure timing with automatic iteration-count calibration, and a
//! per-benchmark summary (median/min/mean time per iteration) printed as a
//! table row. No statistics engine, no plotting, no external dependencies —
//! the microbenchmarks exist to catch order-of-magnitude regressions in hot
//! paths, not to resolve single-digit-percent effects.
//!
//! ```no_run
//! use sds_bench::harness::{black_box, Harness};
//!
//! let mut h = Harness::from_args();
//! let mut g = h.group("math");
//! g.bench("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
//! ```
//!
//! Invocation (`cargo bench -- <filter>`): the first non-flag argument is a
//! substring filter over `group/name`; `SDS_BENCH_QUICK=1` cuts measurement
//! time ~10× for smoke runs.
//!
//! Every measurement is also appended as one JSONL record to
//! `target/bench-history.jsonl` (override the location with
//! `SDS_BENCH_HISTORY=<path>`, disable with `SDS_BENCH_HISTORY=off`; tag
//! records with a revision via `SDS_BENCH_REV`). When the history already
//! holds a record for the same benchmark, a median more than 10× slower than
//! the last recorded one is flagged on stderr — the order-of-magnitude
//! regression gate this harness exists for.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// An identity function the optimizer must assume reads and writes its
/// argument, preventing benchmarked code from being folded away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the supplied
/// closure over the calibrated iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times and records the total elapsed wall time. The
    /// result of every call is passed through [`black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Measurement budget: how long calibration doubles for and how long each
/// sample aims to run.
#[derive(Clone, Copy)]
struct Budget {
    calibration: Duration,
    sample: Duration,
    samples: u32,
}

impl Budget {
    fn from_env() -> Self {
        if std::env::var_os("SDS_BENCH_QUICK").is_some() {
            Self { calibration: Duration::from_millis(2), sample: Duration::from_millis(5), samples: 3 }
        } else {
            Self { calibration: Duration::from_millis(20), sample: Duration::from_millis(50), samples: 10 }
        }
    }
}

/// Result history: where records append to, and the last recorded median per
/// benchmark for regression flagging.
struct History {
    path: PathBuf,
    rev: String,
    last_median: HashMap<String, f64>,
}

/// Median regression threshold: flag only order-of-magnitude slowdowns, the
/// scale this wall-clock harness can resolve reliably.
const REGRESSION_FACTOR: f64 = 10.0;

impl History {
    /// Resolves the default history location: `SDS_BENCH_HISTORY` overrides
    /// (`off`/`0`/empty disables), else `$CARGO_TARGET_DIR`, else the nearest
    /// enclosing `target/` directory.
    fn from_env() -> Option<Self> {
        let path = match std::env::var_os("SDS_BENCH_HISTORY") {
            Some(v) if v.is_empty() || v == "0" || v == "off" => return None,
            Some(v) => PathBuf::from(v),
            None => match std::env::var_os("CARGO_TARGET_DIR") {
                Some(dir) => PathBuf::from(dir).join("bench-history.jsonl"),
                None => {
                    let mut dir = std::env::current_dir().ok()?;
                    loop {
                        let t = dir.join("target");
                        if t.is_dir() {
                            break t.join("bench-history.jsonl");
                        }
                        if !dir.pop() {
                            return None;
                        }
                    }
                }
            },
        };
        Some(Self::at(path))
    }

    /// A history anchored at `path`, preloading the last median per bench
    /// from any existing records.
    fn at(path: PathBuf) -> Self {
        let rev = std::env::var("SDS_BENCH_REV").unwrap_or_else(|_| "unknown".to_string());
        let mut last_median = HashMap::new();
        if let Ok(body) = std::fs::read_to_string(&path) {
            for line in body.lines() {
                if let (Some(bench), Some(median)) =
                    (json_str_field(line, "bench"), json_num_field(line, "median_s"))
                {
                    // Later lines win: the map ends up holding the last run.
                    last_median.insert(bench, median);
                }
            }
        }
        Self { path, rev, last_median }
    }

    /// Appends one record and flags an order-of-magnitude median regression
    /// against the previous record for the same benchmark on stderr.
    fn record(&self, bench: &str, m: &Measurement) {
        if let Some(&prev) = self.last_median.get(bench) {
            if prev > 0.0 && m.median > prev * REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION {bench}: median {} vs {} last run ({:.1}x slower)",
                    fmt_seconds(m.median),
                    fmt_seconds(prev),
                    m.median / prev,
                );
            }
        }
        let line = format!(
            "{{\"bench\":\"{}\",\"median_s\":{},\"min_s\":{},\"mean_s\":{},\"iters\":{},\"samples\":{},\"rev\":\"{}\"}}\n",
            json_escape(bench),
            m.median,
            m.min,
            m.mean,
            m.iters,
            m.samples,
            json_escape(&self.rev),
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("bench-history: cannot write {}: {e}", self.path.display());
        }
    }
}

/// Escapes the two JSON-significant characters our field values can carry.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts a string field from one hand-written JSONL record. Only handles
/// the subset [`History::record`] emits — good enough to read our own lines.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts a numeric field from one hand-written JSONL record.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The top-level runner: owns the name filter, the output format, and the
/// result history.
pub struct Harness {
    filter: Option<String>,
    budget: Budget,
    history: Option<History>,
    ran: usize,
}

impl Harness {
    /// Builds a runner from the process arguments: flags (`--bench`, which
    /// `cargo bench` appends) are ignored, and the first free argument
    /// becomes a substring filter over `group/name`.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self::with_filter(filter)
    }

    /// A runner with an explicit filter (`None` runs everything).
    pub fn with_filter(filter: Option<String>) -> Self {
        Self { filter, budget: Budget::from_env(), history: History::from_env(), ran: 0 }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, name: name.to_string(), printed_header: false }
    }

    /// Prints the closing line; call once after the last group.
    pub fn finish(self) {
        println!("\n{} benchmark(s) run", self.ran);
    }

    /// Records an externally measured value (in seconds) into the bench
    /// history under `name`, arming the same order-of-magnitude regression
    /// flag as a timed benchmark. For experiment metrics that are not the
    /// wall-clock time of a closure — e.g. simulated recovery times — where
    /// the experiment binary already owns the measurement.
    pub fn record_value(&mut self, name: &str, seconds: f64) {
        let m =
            Measurement { min: seconds, median: seconds, mean: seconds, iters: 1, samples: 1 };
        if let Some(history) = &self.history {
            history.record(name, &m);
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) -> Option<Measurement> {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return None;
            }
        }
        let budget = self.budget;
        // Calibrate: double the iteration count until one timed batch
        // exceeds the calibration budget, so per-iteration cost is known to
        // within ~2× before sampling starts.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= budget.calibration || iters >= 1 << 40 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let sample_iters = ((budget.sample.as_secs_f64() / per_iter.max(1e-12)) as u64).max(1);
        let mut per_iter_samples: Vec<f64> = (0..budget.samples)
            .map(|_| {
                let mut b = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_secs_f64() / sample_iters as f64
            })
            .collect();
        per_iter_samples.sort_by(f64::total_cmp);
        self.ran += 1;
        let m = Measurement {
            min: per_iter_samples[0],
            median: per_iter_samples[per_iter_samples.len() / 2],
            mean: per_iter_samples.iter().sum::<f64>() / per_iter_samples.len() as f64,
            iters: sample_iters,
            samples: budget.samples,
        };
        if let Some(history) = &self.history {
            history.record(full_name, &m);
        }
        Some(m)
    }
}

/// A named group of benchmarks sharing a printed header.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    printed_header: bool,
}

impl Group<'_> {
    /// Measures `f` under the name `group/id`, prints one result row, and
    /// returns the measurement (`None` when filtered out).
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> Option<Measurement> {
        let full_name = format!("{}/{id}", self.name);
        let m = self.harness.run_one(&full_name, f)?;
        if !self.printed_header {
            println!("\n== {} ==", self.name);
            self.printed_header = true;
        }
        println!(
            "  {:44} {:>12}/iter  (min {}, mean {}; {} iters x {} samples)",
            full_name,
            fmt_seconds(m.median),
            fmt_seconds(m.min),
            fmt_seconds(m.mean),
            m.iters,
            m.samples,
        );
        Some(m)
    }
}

/// One benchmark's summary statistics, in seconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    pub min: f64,
    pub median: f64,
    pub mean: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
    pub samples: u32,
}

/// Formats a duration in seconds with an auto-selected unit.
fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Harness {
        let mut h = Harness::with_filter(None);
        // Tests must not depend on the wall clock: use the smallest budget.
        // And they must not pollute the workspace's real history file.
        h.budget = Budget { calibration: Duration::from_micros(10), sample: Duration::from_micros(50), samples: 2 };
        h.history = None;
        h
    }

    #[test]
    fn bencher_runs_exactly_iters_times() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 37, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO || count == 37);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut h = quiet();
        h.filter = Some("match-me".into());
        let mut ran_skipped = false;
        let mut ran_matching = false;
        {
            let mut g = h.group("grp");
            g.bench("other", |b| b.iter(|| ran_skipped = true));
            g.bench("match-me", |b| b.iter(|| ran_matching = true));
        }
        assert!(!ran_skipped, "filtered-out benchmark must not run");
        assert!(ran_matching);
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn measurement_produces_ordered_stats() {
        let mut h = quiet();
        let m = h.run_one("g/busy", |b| b.iter(|| black_box((0..100u64).sum::<u64>()))).unwrap();
        assert!(m.min > 0.0);
        assert!(m.min <= m.median);
        assert!(m.iters >= 1);
    }

    #[test]
    fn fmt_seconds_picks_sane_units() {
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(2.5e-3), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.500 us");
        assert_eq!(fmt_seconds(2.5e-8), "25.0 ns");
    }

    #[test]
    fn json_field_extraction_round_trips() {
        let line = "{\"bench\":\"g/na\\\"me\",\"median_s\":0.00025,\"iters\":12,\"rev\":\"abc\"}";
        assert_eq!(json_str_field(line, "bench").as_deref(), Some("g/na\"me"));
        assert_eq!(json_str_field(line, "rev").as_deref(), Some("abc"));
        assert_eq!(json_num_field(line, "median_s"), Some(0.00025));
        assert_eq!(json_num_field(line, "iters"), Some(12.0));
        assert_eq!(json_num_field(line, "missing"), None);
    }

    #[test]
    fn history_records_append_and_reload() {
        let path = std::env::temp_dir()
            .join(format!("sds-bench-history-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let h = History {
            path: path.clone(),
            rev: "r1".into(),
            last_median: HashMap::new(),
        };
        let m = Measurement { min: 1e-6, median: 2e-6, mean: 3e-6, iters: 100, samples: 5 };
        h.record("grp/one", &m);
        h.record("grp/one", &Measurement { median: 4e-6, ..m });
        h.record("grp/two", &m);

        let reloaded = History::at(path.clone());
        assert_eq!(reloaded.last_median.get("grp/one"), Some(&4e-6), "last line wins");
        assert_eq!(reloaded.last_median.get("grp/two"), Some(&2e-6));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.lines().all(|l| json_str_field(l, "rev").is_some()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn harness_writes_history_and_measurement_flows_back() {
        let path = std::env::temp_dir()
            .join(format!("sds-bench-harness-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut h = quiet();
        h.history = Some(History { path: path.clone(), rev: "unknown".into(), last_median: HashMap::new() });
        let m = {
            let mut g = h.group("grp");
            g.bench("timed", |b| b.iter(|| black_box((0..64u64).sum::<u64>()))).unwrap()
        };
        assert!(m.median > 0.0);
        let reloaded = History::at(path.clone());
        assert_eq!(reloaded.last_median.get("grp/timed").copied(), Some(m.median));
        let _ = std::fs::remove_file(&path);
    }
}
