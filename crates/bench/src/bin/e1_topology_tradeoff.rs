//! E1 — Topology trade-off (paper Fig. 1, §3).
//!
//! Claim under test: the decentralized topology "can lead to high bandwidth
//! consumption … \[and\] response implosion" and cannot reach beyond the LAN;
//! the centralized topology is frugal but fragile (E3 covers the fragility);
//! the distributed multi-registry topology reaches everything at moderate
//! cost.

use sds_bench::{f2, kib, run_query_phase, Table};
use sds_core::QueryOptions;
use sds_protocol::ModelId;
use sds_simnet::secs;
use sds_workload::{Deployment, PopulationSpec, Scenario, ScenarioConfig};

fn scenario(deployment: Deployment, seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        lans: 4,
        clients_per_lan: 1,
        deployment,
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 40,
            queries: 32,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    })
}

fn main() {
    let mut table = Table::new(&[
        "topology",
        "recall",
        "success",
        "resp/query",
        "query KiB",
        "publish KiB",
        "maint KiB",
        "LAN KiB",
        "WAN KiB",
    ]);

    for (name, deployment) in [
        ("centralized", Deployment::Centralized),
        ("decentralized", Deployment::Decentralized),
        ("federated", Deployment::Federated { registries_per_lan: 1 }),
    ] {
        let mut s = scenario(deployment, 1);
        // Warm-up: discovery, publishing, federation formation.
        s.sim.run_until(secs(5));
        s.sim.reset_stats();
        let report = run_query_phase(
            &mut s,
            32,
            secs(4),
            QueryOptions::default(),
        );

        let stats = s.sim.stats();
        let mut query_b = 0u64;
        let mut publish_b = 0u64;
        let mut maint_b = 0u64;
        for (kind, ks) in stats.kinds() {
            match kind {
                "query" | "query-response" => query_b += ks.bytes,
                "publish" | "publish-ack" | "renew" | "renew-ack" | "update" | "remove"
                | "fwd-adverts" => publish_b += ks.bytes,
                _ => maint_b += ks.bytes,
            }
        }
        table.row(&[
            name.into(),
            f2(report.recall_mean),
            f2(report.success_rate),
            f2(report.responses.mean),
            kib(query_b),
            kib(publish_b),
            kib(maint_b),
            kib(stats.lan_bytes),
            kib(stats.wan_bytes),
        ]);
    }

    table.print("E1: topology trade-off (4 LANs, 40 semantic services, 32 queries)");
    println!(
        "Paper expectation: decentralized recall is LAN-bound (~1/4 of providers reachable)\n\
         with the most responses per query; centralized and federated reach everything,\n\
         with federated paying WAN query forwarding and registry maintenance for it."
    );
}
