//! E8 — Description sizes on the wire (paper §2).
//!
//! Claim under test: "semantic service advertisements can become quite
//! large, compared to the use of for example URI strings" — and the proposed
//! mitigation, "compression or binary XML versions to reduce the burden on
//! the network", pays off most for the big semantic payloads.

use sds_bench::Table;
use sds_protocol::{
    Advertisement, Codec, Compression, Description, DescriptionTemplate, DiscoveryMessage,
    PublishOp, Uuid,
};
use sds_semantic::{ClassId, QosKey, ServiceProfile};
use sds_simnet::NodeId;

fn publish_size(codec: Codec, description: Description) -> u32 {
    let advert =
        Advertisement { id: Uuid(1), provider: NodeId(0), description, version: 1 };
    codec.message_size(&DiscoveryMessage::publishing(PublishOp::Publish {
        advert,
        lease_ms: 30_000,
    }))
}

fn semantic(outputs: usize, inputs: usize, qos: usize) -> Description {
    let mut p = ServiceProfile::new("blueforce-tracker", ClassId(0));
    p.outputs = (0..outputs as u32).map(ClassId).collect();
    p.inputs = (0..inputs as u32).map(ClassId).collect();
    for _ in 0..qos {
        p = p.with_qos(QosKey::Accuracy, 0.9);
    }
    Description::Semantic(p)
}

fn main() {
    let plain = Codec::new(Compression::None);
    let packed = Codec::new(Compression::BinaryXml);

    let cases: Vec<(&str, Description)> = vec![
        ("URI", Description::Uri("urn:svc:BlueForceTrackingService".into())),
        (
            "template (2 attrs)",
            Description::Template(DescriptionTemplate {
                name: Some("blueforce-tracker".into()),
                type_uri: Some("urn:svc:BlueForceTrackingService".into()),
                attrs: vec![
                    ("area".into(), "sector-2".into()),
                    ("rate".into(), "1hz".into()),
                ],
            }),
        ),
        ("semantic (1 out)", semantic(1, 0, 0)),
        ("semantic (2 out, 1 in, 1 qos)", semantic(2, 1, 1)),
        ("semantic (4 out, 2 in, 3 qos)", semantic(4, 2, 3)),
        ("semantic (8 out, 4 in, 6 qos)", semantic(8, 4, 6)),
    ];

    let mut table = Table::new(&["description", "publish bytes", "binary-XML bytes", "vs URI"]);
    let uri_size = publish_size(plain, cases[0].1.clone());
    for (name, d) in cases {
        let xml = publish_size(plain, d.clone());
        let exi = publish_size(packed, d);
        table.row(&[
            name.into(),
            xml.to_string(),
            exi.to_string(),
            format!("{:.1}x", xml as f64 / uri_size as f64),
        ]);
    }
    table.print("E8: publish-message size by description model (modeled SOAP/XML bytes)");
    println!(
        "Paper expectation: semantic advertisements are several times a URI string and\n\
         grow with profile complexity; a binary-XML encoding recovers roughly a 4:1\n\
         factor, mattering most exactly where descriptions are largest."
    );
}
