//! E3 — Registry failure, the single point of failure, and failover
//! (paper §3.2, §4.1, §4.5).
//!
//! Claim under test: "a completely centralized solution has problems related
//! to robustness, since we now have a single point of failure", while in the
//! multi-registry architecture "these addresses [from registry signaling]
//! may be used in the event of failure", restoring discovery after a
//! transient outage window.
//!
//! Timeline: queries run continuously; at t=60s we crash the victim
//! registries; we report discovery success per 30-second window.

use sds_bench::{f2, run_query_phase, Table};
use sds_core::QueryOptions;
use sds_protocol::ModelId;
use sds_simnet::secs;
use sds_workload::{Deployment, PopulationSpec, Scenario, ScenarioConfig};

fn scenario(deployment: Deployment, seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        lans: 4,
        clients_per_lan: 1,
        deployment,
        population: PopulationSpec {
            model: ModelId::Uri,
            services: 24,
            queries: 24,
            generalization_rate: 0.0,
            seed,
        },
        seed,
        ..Default::default()
    })
}

fn main() {
    let mut table = Table::new(&[
        "topology",
        "victims",
        "before",
        "0-30s after",
        "30-60s after",
        "60-90s after",
    ]);

    for (name, deployment, extra_registries) in [
        ("centralized", Deployment::Centralized, 0usize),
        ("federated 1/LAN", Deployment::Federated { registries_per_lan: 1 }, 0),
        ("federated 2/LAN", Deployment::Federated { registries_per_lan: 2 }, 1),
    ] {
        let mut s = scenario(deployment, 3);
        s.sim.run_until(secs(8));

        let opts = QueryOptions { timeout: secs(2), ..Default::default() };
        let before = run_query_phase(&mut s, 10, secs(3), opts.clone());

        // Crash the first registry (the centralized one / LAN 0's home). In
        // the 2-per-LAN case also crash its co-located twin so failover must
        // cross the federation.
        let victims = 1 + extra_registries.min(s.registries.len().saturating_sub(1));
        for i in 0..victims {
            let r = s.registries[i];
            s.sim.crash_node(r);
        }

        let w1 = run_query_phase(&mut s, 10, secs(3), opts.clone());
        let w2 = run_query_phase(&mut s, 10, secs(3), opts.clone());
        let w3 = run_query_phase(&mut s, 10, secs(3), opts.clone());

        table.row(&[
            name.into(),
            victims.to_string(),
            f2(before.success_rate),
            f2(w1.success_rate),
            f2(w2.success_rate),
            f2(w3.success_rate),
        ]);
    }

    table.print("E3: discovery success around registry failure (URI workload, 4 LANs)");
    println!(
        "Paper expectation: the centralized topology never recovers (single point of\n\
         failure); the federation dips while pings detect the dead home registry and\n\
         providers republish to survivors, then recovers."
    );
}
