//! E13 — The headline claim: discovery quality in dynamic environments.
//!
//! "Current Web Service discovery technologies are not sufficient for
//! opportunistic service discovery and usage in dynamic environments" — the
//! paper's thesis, condensed. We sweep provider churn intensity (mean
//! lifetime) and compare, on identical worlds:
//!
//! * the paper's architecture (federated, leased, failover-capable);
//! * a UDDI-like centralized lease-less registry (the 2006 status quo);
//! * pure decentralized multicast (the other 2006 option).
//!
//! Metrics: recall vs live ground truth, stale-hit fraction, and discovery
//! success. Registries churn too in the federated/centralized rows (one
//! registry bounce mid-run) — the environment spares nobody.

use sds_bench::{f2, run_query_phase, Table};
use sds_core::{QueryOptions, ServiceConfig};
use sds_protocol::ModelId;
use sds_registry::LeasePolicy;
use sds_simnet::{secs, ControlAction, NodeId};
use sds_workload::{ChurnPlan, Deployment, PopulationSpec, Scenario, ScenarioConfig};

struct Row {
    recall: f64,
    stale: f64,
    success: f64,
}

fn run(deployment: Deployment, leasing: bool, mean_up_s: u64, seed: u64) -> Row {
    let mut cfg = ScenarioConfig {
        lans: 3,
        deployment: deployment.clone(),
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 18,
            queries: 24,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    };
    cfg.registry.lease_policy =
        if leasing { LeasePolicy::default() } else { LeasePolicy::no_leasing() };
    cfg.service = ServiceConfig {
        lease_ms: 10_000,
        renew_interval: if leasing { secs(3) } else { u64::MAX / 4 },
        ..ServiceConfig::default()
    };
    let mut s = Scenario::build(cfg);

    // Provider churn for the whole run.
    let providers: Vec<NodeId> = s.services.iter().map(|(n, _)| *n).collect();
    let plan = ChurnPlan::exponential(
        &providers,
        (mean_up_s * 1_000) as f64,
        30_000.0,
        secs(400),
        seed ^ 0xD1CE,
    );
    plan.apply(&mut s.sim);

    // One registry bounce mid-run where registries exist (not for the
    // centralized row: bouncing THE registry is E3's story; here we keep the
    // comparison about advert freshness).
    if matches!(deployment, Deployment::Federated { .. }) && s.registries.len() > 1 {
        let victim = s.registries[1];
        s.sim.schedule(secs(60), ControlAction::Crash(victim));
        s.sim.schedule(secs(90), ControlAction::Revive(victim));
    }

    s.sim.run_until(secs(10));
    let report = run_query_phase(
        &mut s,
        60,
        secs(4),
        QueryOptions { timeout: secs(2), ..Default::default() },
    );
    Row { recall: report.recall_mean, stale: report.stale_fraction, success: report.success_rate }
}

fn main() {
    let mut table = Table::new(&[
        "system",
        "mean up-time",
        "recall",
        "stale hits",
        "success",
    ]);
    for mean_up_s in [20u64, 60, 180] {
        let rows: [(&str, Deployment, bool); 3] = [
            (
                "paper (federated+leases)",
                Deployment::Federated { registries_per_lan: 1 },
                true,
            ),
            ("UDDI-like (central, no leases)", Deployment::Centralized, false),
            ("decentralized multicast", Deployment::Decentralized, true),
        ];
        for (name, deployment, leasing) in rows {
            let r = run(deployment, leasing, mean_up_s, 91);
            table.row(&[
                name.into(),
                format!("{mean_up_s}s"),
                f2(r.recall),
                f2(r.stale),
                f2(r.success),
            ]);
        }
    }
    table.print("E13: discovery quality under churn (semantic workload, 3 LANs, 60 queries)");
    println!(
        "Paper expectation: the architecture holds recall and freshness as churn\n\
         intensifies (leases purge the dead, revived providers republish, a bounced\n\
         registry self-heals); the UDDI-like registry reaches everything but serves\n\
         ever-staler adverts; decentralized multicast stays fresh but is blind\n\
         beyond its own LAN."
    );
}
