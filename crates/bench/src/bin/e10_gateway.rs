//! E10 — Gateway election among co-located registries (paper §4.7).
//!
//! Claim under test: "In the case where there are two or more registry nodes
//! locally, this may lead to redundant queries being forwarded on the
//! registry network … There must be some coordination between local nodes so
//! that, at any time, only one node acts as the gateway to the WAN-level
//! registry network."

use sds_bench::{f2, Table};
use sds_core::{
    ClientConfig, ClientNode, QueryMode, QueryOptions, RegistryConfig, RegistryNode,
    ServiceConfig, ServiceNode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_simnet::{secs, Sim, SimConfig, Topology};

struct Outcome {
    remote_queries: u64,
    remote_duplicates: u64,
    wan_kib: f64,
    hits: usize,
}

fn run(local_registries: usize, election: bool, seed: u64) -> Outcome {
    let mut topo = Topology::new();
    let lan0 = topo.add_lan();
    let lan1 = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);

    // Remote registry + service on LAN 1.
    let remote = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(RegistryConfig::default(), None)),
    );
    sim.add_node(
        lan1,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:far".into())],
            None,
        )),
    );

    // Co-located registries on LAN 0, each with its own WAN peering.
    for _ in 0..local_registries {
        sim.add_node(
            lan0,
            Box::new(RegistryNode::new(
                RegistryConfig {
                    gateway_election: election,
                    seeds: vec![remote],
                    ..Default::default()
                },
                None,
            )),
        );
    }
    let client = sim.add_node(lan0, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(20));
    sim.reset_stats();

    // Multicast client queries reach every local registry.
    let n_queries = 10u64;
    for q in 0..n_queries {
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(
                ctx,
                QueryPayload::Uri("urn:svc:far".into()),
                QueryOptions { mode: QueryMode::MulticastLan, timeout: secs(2), ..Default::default() },
            );
        });
        sim.run_until(secs(20 + (q + 1) * 3));
    }

    let rstats = sim.handler::<RegistryNode>(remote).unwrap().stats;
    let hits = sim
        .handler::<ClientNode>(client)
        .unwrap()
        .completed
        .iter()
        .map(|c| c.hits.len())
        .max()
        .unwrap_or(0);
    Outcome {
        remote_queries: rstats.queries_received,
        remote_duplicates: rstats.duplicate_queries_dropped,
        wan_kib: sim.stats().wan_bytes as f64 / 1024.0,
        hits,
    }
}

fn main() {
    let mut table = Table::new(&[
        "local registries",
        "election",
        "WAN queries recv'd",
        "dup drops @remote",
        "WAN KiB",
        "hits",
    ]);
    for local in [1usize, 2, 4] {
        for election in [false, true] {
            let o = run(local, election, 31);
            table.row(&[
                local.to_string(),
                if election { "on".into() } else { "off".into() },
                o.remote_queries.to_string(),
                o.remote_duplicates.to_string(),
                f2(o.wan_kib),
                o.hits.to_string(),
            ]);
        }
    }
    table.print("E10: redundant WAN forwarding with co-located registries (10 multicast queries)");
    println!(
        "Paper expectation: without coordination, every co-located registry forwards\n\
         the same query to the WAN (the remote registry sees and drops duplicates);\n\
         with gateway election only the elected gateway forwards, and discovery\n\
         results are unchanged."
    );
}
