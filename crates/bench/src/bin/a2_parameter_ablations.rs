//! A2 — Ablations of the architecture's tunables.
//!
//! The paper makes the parameters deployment-configurable ("the interval
//! between registry beacons, the number of registry nodes to traverse for a
//! query, and the advertisement lease period … could even be made
//! configurable on an individual deployment basis"); these sweeps show what
//! each knob actually buys.
//!
//! * response window: how long the adopting registry waits for federation
//!   answers — completeness vs answer latency;
//! * beacon interval: passive-discovery latency vs beacon traffic;
//! * compression: system-wide traffic with and without binary XML.

use sds_bench::{f2, kib, run_query_phase, Table};
use sds_core::{
    AttachConfig, Bootstrap, ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode,
};
use sds_protocol::{Codec, Compression, DiscoveryMessage, ModelId};
use sds_simnet::{secs, Sim, SimConfig, Topology};
use sds_workload::{Deployment, PopulationSpec, Scenario, ScenarioConfig};

fn scenario_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        lans: 4,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 24,
            queries: 24,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    }
}

fn sweep_response_window() {
    let mut table = Table::new(&["window ms", "recall", "answer ms (p95)"]);
    for window in [50u64, 150, 500, 1_500] {
        let mut cfg = scenario_cfg(61);
        cfg.registry.response_window = window;
        let mut s = Scenario::build(cfg);
        s.sim.run_until(secs(4));
        let r = run_query_phase(
            &mut s,
            24,
            secs(4),
            QueryOptions { timeout: secs(3), ..Default::default() },
        );
        table.row(&[window.to_string(), f2(r.recall_mean), f2(r.first_response_ms.p95)]);
    }
    table.print("A2a: response-aggregation window (federated, 4 LANs, WAN ~20-25 ms)");
}

fn sweep_beacon_interval() {
    let mut table = Table::new(&["beacon s", "attach ms (passive)", "beacon KiB/min"]);
    for beacon_s in [1u64, 5, 15, 60] {
        let mut topo = Topology::new();
        let lan = topo.add_lan();
        let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 62);
        let r = sim.add_node(
            lan,
            Box::new(RegistryNode::new(
                RegistryConfig { beacon_interval: secs(beacon_s), ..Default::default() },
                None,
            )),
        );
        sim.run_until(500);
        let c = sim.add_node(
            lan,
            Box::new(ClientNode::new(ClientConfig {
                attach: AttachConfig { bootstrap: Bootstrap::PassiveOnly, ..Default::default() },
                ..Default::default()
            })),
        );
        let t0 = sim.now();
        let mut attach_ms = 0;
        for step in 0..200_000u64 {
            sim.run_until(t0 + step * 10);
            if sim.handler::<ClientNode>(c).unwrap().home_registry() == Some(r) {
                attach_ms = sim.now() - t0;
                break;
            }
        }
        sim.reset_stats();
        sim.run_until(sim.now() + secs(60));
        let beacon_bytes = sim.stats().kind("beacon").bytes;
        table.row(&[beacon_s.to_string(), attach_ms.to_string(), kib(beacon_bytes)]);
    }
    table.print("A2b: beacon interval — passive discovery latency vs beacon traffic");
}

fn sweep_compression() {
    let mut table = Table::new(&["codec", "recall", "LAN KiB", "WAN KiB"]);
    for (name, compression) in
        [("plain XML", Compression::None), ("binary XML", Compression::BinaryXml)]
    {
        let mut cfg = scenario_cfg(63);
        let codec = Codec::new(compression);
        cfg.registry.codec = codec;
        cfg.service.codec = codec;
        cfg.client.codec = codec;
        let mut s = Scenario::build(cfg);
        s.sim.run_until(secs(4));
        s.sim.reset_stats();
        let r = run_query_phase(
            &mut s,
            24,
            secs(4),
            QueryOptions { timeout: secs(3), ..Default::default() },
        );
        table.row(&[
            name.into(),
            f2(r.recall_mean),
            kib(s.sim.stats().lan_bytes),
            kib(s.sim.stats().wan_bytes),
        ]);
    }
    table.print("A2c: system-wide binary-XML compression (same workload, same recall)");
}

fn main() {
    sweep_response_window();
    sweep_beacon_interval();
    sweep_compression();
    println!(
        "Expected shapes: (a) windows below the WAN round-trip lose remote hits —\n\
         recall jumps once the window clears ~2×RTT, after which more waiting only\n\
         adds latency; (b) passive attach latency ≈ E[beacon]/2 while beacon traffic\n\
         is inversely proportional to the interval; (c) compression cuts both LAN and\n\
         WAN bytes by ~3-4× with identical discovery results."
    );
}
