//! E12 — DHT keyword indexes cannot evaluate semantic queries (paper §3.3).
//!
//! Claim under test: "Such systems are based on storage of hashes in the
//! intermediate nodes, and therefore, semantic query evaluation cannot be
//! performed at the intermediate nodes in such systems." We run identical
//! semantic workloads (with a growing share of subsumption queries) against
//! a DHT keyword index and against the federated autonomous registries.

use std::sync::Arc;

use sds_baselines::{DhtConfig, DhtNode};
use sds_bench::{f2, run_query_phase, Table};
use sds_core::{ClientConfig, ClientNode, QueryOptions, ServiceConfig, ServiceNode};
use sds_metrics::recall;
use sds_protocol::{DiscoveryMessage, ModelId};
use sds_semantic::SubsumptionIndex;
use sds_simnet::{secs, NodeId, Sim, SimConfig, Topology};
use sds_workload::{
    battlefield, Deployment, Oracle, PopulationSpec, Scenario, ScenarioConfig, Workload,
};

const LANS: usize = 4;

fn federated_recall(generalization_rate: f64, seed: u64) -> f64 {
    let mut s = Scenario::build(ScenarioConfig {
        lans: LANS,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 24,
            queries: 24,
            generalization_rate,
            seed,
        },
        seed,
        ..Default::default()
    });
    s.sim.run_until(secs(4));
    run_query_phase(&mut s, 24, secs(3), QueryOptions { timeout: secs(2), ..Default::default() })
        .recall_mean
}

fn dht_recall(generalization_rate: f64, seed: u64) -> f64 {
    let (ont, classes) = battlefield();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let oracle = Oracle::new(idx.clone());
    let w = Workload::generate(
        &ont,
        &classes,
        &PopulationSpec {
            model: ModelId::Semantic,
            services: 24,
            queries: 24,
            generalization_rate,
            seed,
        },
    );

    let mut topo = Topology::new();
    let lans: Vec<_> = (0..LANS).map(|_| topo.add_lan()).collect();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);
    let members: Vec<NodeId> = (0..LANS as u32).map(NodeId).collect();
    for &lan in &lans {
        sim.add_node(
            lan,
            Box::new(DhtNode::new(DhtConfig {
                members: members.clone(),
                beacon_interval: secs(5),
                codec: Default::default(),
            })),
        );
    }
    let mut services = Vec::new();
    for (i, d) in w.descriptions.iter().enumerate() {
        let node = sim.add_node(
            lans[i % LANS],
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![d.clone()],
                Some(idx.clone()),
            )),
        );
        services.push((node, d.clone()));
    }
    let client = sim.add_node(lans[0], Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(4));

    let mut recalls = Vec::new();
    for (qi, payload) in w.queries.iter().enumerate() {
        let expected = oracle.expected_providers(payload, &services, |_| true);
        let p = payload.clone();
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(ctx, p, QueryOptions { timeout: secs(2), ..Default::default() });
        });
        sim.run_until(secs(4) + (qi as u64 + 1) * secs(3));
        let done = &sim.handler::<ClientNode>(client).unwrap().completed;
        let got: Vec<NodeId> = done[qi].hits.iter().map(|h| h.advert.provider).collect();
        recalls.push(recall(&expected, &got));
    }
    recalls.iter().sum::<f64>() / recalls.len() as f64
}

fn main() {
    let mut table = Table::new(&["subsumption share", "DHT recall", "federated recall"]);
    for rate in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        table.row(&[
            f2(rate),
            f2(dht_recall(rate, 37)),
            f2(federated_recall(rate, 37)),
        ]);
    }
    table.print("E12: semantic workloads on a DHT keyword index vs federated registries");
    println!(
        "Paper expectation: the DHT answers exact-category queries (hash equality)\n\
         but its recall collapses linearly as subsumption queries enter the mix;\n\
         federated autonomous registries evaluate semantics at the registry and\n\
         stay at full recall."
    );
}
