//! Q2 — Sharded data plane + registry-edge cache under heavy mixed traffic.
//!
//! A registry in a dynamic environment does not see one query at a time: it
//! sees sustained bursts of repeated queries (many clients hunting the same
//! capability — the demand side of E2's response implosion) interleaved with
//! publish churn and lease expiry. This binary drives that mix through four
//! data-plane configurations over the same advert population:
//!
//! * `unsharded`    — [`RegistryEngine`], one evaluation per query;
//! * `sharded`      — [`ShardedEngine`] (4 shards), routed single evaluations;
//! * `shard+batch`  — per-burst [`ShardedEngine::evaluate_batch`]: identical
//!   in-flight queries coalesce to one evaluation and semantic taxonomy
//!   walks are memoized per shard;
//! * `shard+cache`  — a [`QueryCache`] in front of the sharded engine, with
//!   lease-driven validity and publish invalidation, as `RegistryNode` runs;
//! * `batch/s{S}w{W}` — the workers × shards matrix: the batch path at
//!   `S ∈ {4, 16}` shards with `data_plane_workers ∈ {1, 2, 4}` scoped
//!   worker threads fanning each burst's per-shard queues in parallel.
//!
//! Reported per configuration: sustained queries/s plus p50/p99 per-query
//! latency; mean and p99 seconds go to `target/bench-history.jsonl` via the
//! shared harness, arming its order-of-magnitude regression flag. The binary
//! also asserts the coalescing claim outright: a burst with N copies of a
//! query costs exactly one evaluation per distinct (payload, cap) pair, and
//! every configuration returns byte-identical hits for a probe query. In
//! full mode on ≥4-core machines, it further asserts the parallel win: ≥2×
//! queries/s at 4 workers vs 1 at 10⁵ adverts (never checked on narrower
//! machines — there is nothing to win there).

use std::sync::Arc;
use std::time::Instant;

use sds_bench::harness::Harness;
use sds_bench::{f2, Table};
use sds_protocol::{
    Advertisement, Description, DescriptionTemplate, QueryId, QueryMessage, QueryPayload, Uuid,
};
use sds_rand::Rng;
use sds_registry::{
    cache_key, LeasePolicy, QueryCache, RegistryEngine, SemanticEvaluator, ShardedEngine,
    TemplateEvaluator, UriEvaluator,
};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;
use sds_workload::parametric;

const TEMPLATE_TYPES: u32 = 64;
const SHARDS: usize = 4;
/// The parallel-batch matrix: shard counts × data-plane worker counts.
const SHARD_MATRIX: [usize; 2] = [4, 16];
const WORKER_MATRIX: [usize; 3] = [1, 2, 4];
/// Queries per burst; every burst draws from `DISTINCT_QUERIES` payloads, so
/// the average duplication factor is their ratio.
const BURST_QUERIES: usize = 256;
const DISTINCT_QUERIES: usize = 32;
/// Fresh short-lease adverts published per burst (the churn half of the
/// workload; they expire a few bursts later).
const CHURN_PER_BURST: usize = 16;
/// Simulated time per burst; churn leases span a handful of bursts.
const BURST_DT: u64 = 100;
const CHURN_LEASE_MS: u64 = 350;

fn taxonomy() -> (Ontology, Vec<ClassId>, Vec<ClassId>) {
    let ont = parametric(4, 4, 4);
    let leaves: Vec<ClassId> =
        (ont.len() - 1024..ont.len()).map(|i| ClassId(i as u32)).collect();
    // All level-2 classes (4 leaf descendants each → 1/256 selectivity):
    // named C2_<root>_<child> in the parametric taxonomy.
    let categories: Vec<ClassId> = (0..4)
        .flat_map(|r| (0..4).map(move |c| (r, c)))
        .map(|(r, c)| ont.lookup(&format!("C2_{r}_{c}")).expect("level-2 class exists"))
        .collect();
    (ont, leaves, categories)
}

fn advert(i: usize, leaves: &[ClassId], rng: &mut Rng) -> Advertisement {
    let description = match i % 3 {
        0 => Description::Uri(format!("urn:svc:q2-{i}")),
        1 => Description::Template(DescriptionTemplate {
            name: Some(format!("svc{i}")),
            type_uri: Some(format!("urn:type:{}", rng.gen_range(0..TEMPLATE_TYPES))),
            attrs: Vec::new(),
        }),
        _ => {
            let cat = leaves[rng.gen_range(0..leaves.len() as u64) as usize];
            let out = leaves[rng.gen_range(0..leaves.len() as u64) as usize];
            Description::Semantic(
                ServiceProfile::new(format!("svc{i}"), cat).with_outputs(&[out]),
            )
        }
    };
    Advertisement { id: Uuid(i as u128 + 1), provider: NodeId(i as u32), description, version: 1 }
}

/// The mixed query pool: half semantic category queries, the rest split
/// between exact URI and typed template probes — all selective, all capped.
fn query_pool(n: usize, categories: &[ClassId], rng: &mut Rng) -> Vec<QueryPayload> {
    (0..DISTINCT_QUERIES)
        .map(|i| match i % 4 {
            0 | 1 => {
                let cat = categories[rng.gen_range(0..categories.len() as u64) as usize];
                QueryPayload::Semantic(ServiceRequest::for_category(cat))
            }
            2 => QueryPayload::Uri(format!("urn:svc:q2-{}", rng.gen_range(0..n as u64))),
            _ => QueryPayload::Template(DescriptionTemplate {
                type_uri: Some(format!("urn:type:{}", rng.gen_range(0..TEMPLATE_TYPES))),
                ..Default::default()
            }),
        })
        .collect()
}

/// One burst of the sustained workload: queries drawn from the pool plus the
/// churn adverts published before them.
struct Burst {
    queries: Vec<QueryMessage>,
    churn: Vec<Advertisement>,
}

fn make_bursts(n: usize, bursts: usize, pool: &[QueryPayload], leaves: &[ClassId]) -> Vec<Burst> {
    let mut rng = Rng::seed_from_u64(0x52_B00F ^ n as u64);
    let mut seq = 0u64;
    (0..bursts)
        .map(|b| {
            let churn = (0..CHURN_PER_BURST)
                .map(|c| {
                    let i = 10_000_000 + b * CHURN_PER_BURST + c;
                    advert(i, leaves, &mut rng)
                })
                .collect();
            let queries = (0..BURST_QUERIES)
                .map(|_| {
                    seq += 1;
                    QueryMessage {
                        id: QueryId { origin: NodeId(0), seq },
                        payload: pool[rng.gen_range(0..pool.len() as u64) as usize].clone(),
                        max_responses: Some(32),
                        ttl: 0,
                        reply_to: None,
                    }
                })
                .collect();
            Burst { queries, churn }
        })
        .collect()
}

fn base_population(n: usize, leaves: &[ClassId]) -> Vec<Advertisement> {
    let mut rng = Rng::seed_from_u64(0x52_5EED ^ n as u64);
    (0..n).map(|i| advert(i, leaves, &mut rng)).collect()
}

fn unsharded_engine(adverts: &[Advertisement], idx: &Arc<SubsumptionIndex>) -> RegistryEngine {
    let mut e = RegistryEngine::new(LeasePolicy::default());
    e.register_evaluator(Box::new(UriEvaluator));
    e.register_evaluator(Box::new(TemplateEvaluator));
    e.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
    for a in adverts {
        e.publish(a.clone(), NodeId(0), 0, 1_000_000);
    }
    e
}

fn sharded(adverts: &[Advertisement], idx: &Arc<SubsumptionIndex>) -> ShardedEngine {
    sharded_with(adverts, idx, SHARDS, 1)
}

fn sharded_with(
    adverts: &[Advertisement],
    idx: &Arc<SubsumptionIndex>,
    shards: usize,
    workers: usize,
) -> ShardedEngine {
    let mut e = ShardedEngine::new(LeasePolicy::default(), shards, Some(idx));
    e.set_workers(workers);
    e.register_evaluator(Box::new(UriEvaluator));
    e.register_evaluator(Box::new(TemplateEvaluator));
    e.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
    for a in adverts {
        e.publish(a.clone(), NodeId(0), 0, 1_000_000);
    }
    e
}

/// Latency summary over one configuration's run.
struct RunStats {
    total_secs: f64,
    queries: usize,
    /// Per-query latencies in seconds (burst-level averages for the batch
    /// path, where queries are not timed individually).
    latencies: Vec<f64>,
}

impl RunStats {
    fn percentile(&mut self, p: f64) -> f64 {
        self.latencies.sort_unstable_by(f64::total_cmp);
        let i = ((self.latencies.len() - 1) as f64 * p).round() as usize;
        self.latencies[i]
    }
    fn qps(&self) -> f64 {
        self.queries as f64 / self.total_secs
    }
    fn mean(&self) -> f64 {
        self.total_secs / self.queries as f64
    }
}

fn run_unsharded(engine: &mut RegistryEngine, bursts: &[Burst]) -> RunStats {
    let mut stats = RunStats { total_secs: 0.0, queries: 0, latencies: Vec::new() };
    let mut now = 0u64;
    for burst in bursts {
        now += BURST_DT;
        for a in &burst.churn {
            engine.publish(a.clone(), NodeId(0), now, CHURN_LEASE_MS);
        }
        for q in &burst.queries {
            let t = Instant::now();
            let hits = engine.evaluate(q, now);
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(hits);
            stats.total_secs += dt;
            stats.latencies.push(dt);
            stats.queries += 1;
        }
    }
    stats
}

fn run_sharded(engine: &mut ShardedEngine, bursts: &[Burst], batch: bool) -> RunStats {
    let mut stats = RunStats { total_secs: 0.0, queries: 0, latencies: Vec::new() };
    let mut now = 0u64;
    for burst in bursts {
        now += BURST_DT;
        for a in &burst.churn {
            engine.publish(a.clone(), NodeId(0), now, CHURN_LEASE_MS);
        }
        if batch {
            let t = Instant::now();
            let out = engine.evaluate_batch(&burst.queries, now);
            let dt = t.elapsed().as_secs_f64();
            assert!(
                out.unique_evaluations() <= DISTINCT_QUERIES,
                "coalescing must collapse duplicates to distinct payloads"
            );
            std::hint::black_box(out.unique_hits);
            stats.total_secs += dt;
            stats.queries += burst.queries.len();
            // Burst-level per-query average: batch queries are not timed
            // individually.
            stats
                .latencies
                .extend(std::iter::repeat_n(dt / burst.queries.len() as f64, burst.queries.len()));
        } else {
            for q in &burst.queries {
                let t = Instant::now();
                let hits = engine.evaluate(q, now);
                let dt = t.elapsed().as_secs_f64();
                std::hint::black_box(hits);
                stats.total_secs += dt;
                stats.latencies.push(dt);
                stats.queries += 1;
            }
        }
    }
    stats
}

fn run_cached(engine: &mut ShardedEngine, bursts: &[Burst], idx: &SubsumptionIndex) -> RunStats {
    let mut stats = RunStats { total_secs: 0.0, queries: 0, latencies: Vec::new() };
    let mut cache = QueryCache::new(2 * DISTINCT_QUERIES);
    let mut now = 0u64;
    for burst in bursts {
        now += BURST_DT;
        for a in &burst.churn {
            // Publish invalidation, exactly as RegistryNode wires it for a
            // fresh advert; churn ids are always new here.
            engine.publish(a.clone(), NodeId(0), now, CHURN_LEASE_MS);
            cache.invalidate_for_advert(a, Some(idx));
        }
        for q in &burst.queries {
            let t = Instant::now();
            let key = cache_key(&q.payload, q.max_responses);
            if let Some(hits) = cache.get(&key, now) {
                std::hint::black_box(hits);
            } else {
                let (hits, valid_until) = engine.evaluate_with_validity(q, now);
                cache.insert(key, &q.payload, hits.clone(), valid_until, now);
                std::hint::black_box(hits);
            }
            let dt = t.elapsed().as_secs_f64();
            stats.total_secs += dt;
            stats.latencies.push(dt);
            stats.queries += 1;
        }
    }
    let cs = cache.stats();
    assert!(cs.hits > 0, "a duplicated workload must produce cache hits");
    stats
}

fn main() {
    let (ont, leaves, categories) = taxonomy();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let quick = std::env::var_os("SDS_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick { &[1_000] } else { &[10_000, 100_000] };
    let bursts_per_run = if quick { 8 } else { 32 };

    let mut h = Harness::from_args();
    let mut table = Table::new(&[
        "store size",
        "configuration",
        "queries/s",
        "p50 µs",
        "p99 µs",
        "vs unsharded",
    ]);
    let mut headline = Vec::new();

    for &n in sizes {
        // Store construction (3 configurations × up to 10⁵ publishes each)
        // dominates setup; the runs themselves stay strictly sequential.
        let population = base_population(n, &leaves);
        let mut rng = Rng::seed_from_u64(0x52_9001 ^ n as u64);
        let pool = query_pool(n, &categories, &mut rng);
        let bursts = make_bursts(n, bursts_per_run, &pool, &leaves);
        let built =
            sds_bench::parallel::map(&[(); 3], |_, _| sharded(&population, &idx));
        let mut reference = unsharded_engine(&population, &idx);
        let mut engines = built.into_iter();
        let mut plain = engines.next().expect("built");
        let mut batched = engines.next().expect("built");
        let mut cached = engines.next().expect("built");

        // Equivalence probe before timing: every configuration answers a
        // pool query with byte-identical ranked hits.
        let probe = QueryMessage {
            id: QueryId { origin: NodeId(0), seq: 0 },
            payload: pool[0].clone(),
            max_responses: Some(32),
            ttl: 0,
            reply_to: None,
        };
        let want = reference.evaluate(&probe, 1);
        assert_eq!(want, plain.evaluate(&probe, 1), "sharded must match unsharded");
        let probe_batch = plain.evaluate_batch(std::slice::from_ref(&probe), 1);
        assert_eq!(want.as_slice(), probe_batch.hits(0), "batched must match unsharded");

        let runs: Vec<(&str, RunStats)> = vec![
            ("unsharded", run_unsharded(&mut reference, &bursts)),
            ("sharded", run_sharded(&mut plain, &bursts, false)),
            ("shard+batch", run_sharded(&mut batched, &bursts, true)),
            ("shard+cache", run_cached(&mut cached, &bursts, &idx)),
        ];
        let base_mean = runs[0].1.mean();
        for (name, mut stats) in runs {
            let mean = stats.mean();
            let p50 = stats.percentile(0.50);
            let p99 = stats.percentile(0.99);
            h.record_value(&format!("q2/{name}/{n}/mean"), mean);
            h.record_value(&format!("q2/{name}/{n}/p99"), p99);
            table.row(&[
                n.to_string(),
                name.to_string(),
                format!("{:.0}", stats.qps()),
                f2(p50 * 1e6),
                f2(p99 * 1e6),
                format!("{:.1}x", base_mean / mean),
            ]);
            if n == *sizes.last().unwrap() {
                headline.push((name.to_string(), base_mean / mean));
            }
        }

        // Workers × shards matrix over the batch path: same bursts, fresh
        // engines (runs mutate lease state), per-burst per-shard queues
        // fanned across `w` scoped workers. `batch/s4w1` is the sequential
        // baseline the speedup assertion compares against.
        let matrix: Vec<(usize, usize)> = SHARD_MATRIX
            .iter()
            .flat_map(|&s| WORKER_MATRIX.iter().map(move |&w| (s, w)))
            .collect();
        let engines =
            sds_bench::parallel::map(&matrix, |_, &(s, w)| sharded_with(&population, &idx, s, w));
        let mut matrix_qps = Vec::new();
        for (&(s, w), mut engine) in matrix.iter().zip(engines) {
            assert_eq!(
                want.as_slice(),
                engine.evaluate_batch(std::slice::from_ref(&probe), 1).hits(0),
                "parallel batch must match unsharded at s={s} w={w}"
            );
            let mut stats = run_sharded(&mut engine, &bursts, true);
            let name = format!("batch/s{s}w{w}");
            let mean = stats.mean();
            h.record_value(&format!("q2/{name}/{n}/mean"), mean);
            h.record_value(&format!("q2/{name}/{n}/p99"), stats.percentile(0.99));
            table.row(&[
                n.to_string(),
                name,
                format!("{:.0}", stats.qps()),
                f2(stats.percentile(0.50) * 1e6),
                f2(stats.percentile(0.99) * 1e6),
                format!("{:.1}x", base_mean / mean),
            ]);
            matrix_qps.push(((s, w), stats.qps()));
        }
        let qps_at = |s: usize, w: usize| {
            matrix_qps
                .iter()
                .find(|(k, _)| *k == (s, w))
                .map(|&(_, q)| q)
                .expect("matrix ran")
        };
        if n == *sizes.last().unwrap() {
            // mean = 1/qps per query, so "vs unsharded" = base_mean * qps.
            headline.push((format!("batch/s{SHARDS}w4"), base_mean * qps_at(SHARDS, 4)));
        }
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        if !quick && n >= 100_000 && cores >= 4 {
            let (w1, w4) = (qps_at(SHARDS, 1), qps_at(SHARDS, 4));
            assert!(
                w4 >= 2.0 * w1,
                "parallel batch at {SHARDS} shards / 4 workers must sustain >=2x \
                 queries/s over 1 worker at {n} adverts on a {cores}-core machine \
                 (got {w4:.0} vs {w1:.0})"
            );
        }
    }

    table.print("Q2: mixed query/publish/expiry workload by data-plane configuration");
    for (name, speedup) in &headline {
        println!(
            "{name} at {} adverts: {speedup:.1}x vs unsharded",
            sizes.last().unwrap()
        );
    }
    println!(
        "\nExpectation: batching coalesces the burst's duplicate queries to one\n\
         evaluation per distinct payload and memoizes taxonomy walks; the edge\n\
         cache amortizes repeats across bursts until leases or churn invalidate\n\
         them. Mean and p99 recorded to target/bench-history.jsonl."
    );
    h.finish();
}
