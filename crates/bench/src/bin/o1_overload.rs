//! O1 — Overload resilience: admission control, backpressure, and graceful
//! degradation under a metro-scale flash crowd.
//!
//! Every registry gets a modeled processing budget (`NodeCapacity`: one
//! delivery per simulated millisecond, a bounded ingress queue), and a flash
//! crowd pushes 10× the baseline query rate at every LAN for the storm
//! window. Two otherwise identical worlds are compared:
//!
//! * **baseline** — the overload layer off: no admission control, passive
//!   clients. Queries beyond the ingress queue are silently lost and never
//!   retried; storm goodput collapses to roughly `queue_limit / burst`.
//! * **layered** — registries run the `OverloadPolicy` ladder (degraded
//!   response caps → stale service → `Busy` nacks for fresh queries, with
//!   renewals priced out of shedding entirely), clients honor
//!   `retry_after_ms` hints with jittered backoff and hedge after repeated
//!   nacks, and providers stretch renewal cadence under pressure.
//!
//! The claim under test: at 10⁵+ nodes on the partitioned engine, the
//! layered world sustains ≥2× the storm goodput of the baseline, sheds
//! strictly lowest-priority-first (zero renewal-class shedding while query
//! shedding is active, and any renewal the saturated FIFO queue physically
//! drops is healed by provider ack-retries — no lease ever expires), and
//! recovers to recall 1.0 within one `SDS_RECOVERY_BOUND` of the storm
//! ending. Storm demand comes from a deterministic
//! [`OverloadPlan::flash_crowd`]; goodput/latency accounting is an
//! [`OverloadLedger`] fold over every client's completed queries.
//!
//! The storm interval (997 ms) is deliberately coprime-ish to the renewal
//! cadence so demand bursts drift across the renewal marks instead of
//! phase-locking with them; the bounded queue therefore always drains
//! between a burst and the next synchronized renewal wave.

use sds_bench::harness::Harness;
use sds_bench::{f2, Table};
use sds_core::{
    ClientNode, OverloadPolicy, QueryMode, QueryOptions, RegistryConfig, RegistryNode,
    RetryPolicy, ServiceNode,
};
use sds_metrics::{recall, OverloadLedger};
use sds_protocol::ModelId;
use sds_simnet::{secs, NodeCapacity, PartitionPlan, SimTime};
use sds_workload::{Deployment, OverloadPlan, PopulationSpec, Scenario, ScenarioConfig};

/// Per-LAN baseline queries per demand event; the storm multiplies this.
const BASE_PER_LAN: u32 = 20;
/// Flash-crowd multiplier (the acceptance criterion's "10× flash crowd").
const SURGE: u32 = 10;
/// Demand event spacing. Odd on purpose, twice over: bursts must not
/// phase-lock with the 10 s renewal marks (residues drift 30 ms per mark),
/// and the ~1 s gap keeps `retry_after`/backoff re-sends (0.4–1.5 s out)
/// landing *between* bursts instead of on top of the next one.
const INTERVAL: SimTime = 997;
/// Modeled registry ingress: 1 delivery/ms, 32 waiting slots. A storm burst
/// of ~200 queries per LAN overflows this ~6×, which is the whole point.
const CAPACITY: NodeCapacity = NodeCapacity { ops_per_tick: 1, queue_limit: 32 };
/// Software processing budget per 200 ms overload tick for the quick
/// shape. Chosen so calm utilization sits well under `degrade_pct` while
/// storm-tick processing (burst drain plus paced retries, ~36/tick) rides
/// the degrade/stale bands and crosses into the busy band at burst peaks
/// without pinning there — pinned `Busy` would starve the very retries the
/// hints schedule. The full shape doubles this (see `Shape::ops_budget`):
/// a 229-peer full-mesh registry's *ambient* control plane (one ping+pong
/// per peer per 5 s, one sync digest per peer per 10 s ≈ 118 msg/s ≈
/// 24/tick) would sit at 60% of this budget — chronically degraded by its
/// own heartbeat — so the metro budget is provisioned for mesh size and
/// the ladder meters demand headroom, not federation chatter.
const OPS_BUDGET: u32 = 40;
/// World/workload seed (also the flash-crowd schedule seed).
const SEED: u64 = 0x01AD;

struct Shape {
    lans: usize,
    services_per_lan: usize,
    clients_per_lan: usize,
    /// Absolute warmup: attach, publish, gossip-driven federation mesh
    /// closure, and anti-entropy replication all run unmetered, then
    /// capacity is installed and the plan starts. The full shape's value
    /// comes from the `SDS_O1_DIAG` coverage sweep in [`run`]: every
    /// replica holds the complete advert population by t≈100 s.
    warmup: SimTime,
    /// Plan-relative storm window and demand horizon.
    storm_start: SimTime,
    storm_end: SimTime,
    horizon: SimTime,
    /// Metro lease economics: 300 s leases renewed every 60 s (F1 runs
    /// 120 s/40 s at 8 LANs; a 230-registry mesh provisions further). A
    /// replica's lease is refreshed only by anti-entropy deltas, and those
    /// flow through the same capacity-bounded ingress queue the storm
    /// saturates — synchronized 229-digest rounds overflow it even when
    /// calm, so any lease shorter than the run would make replica survival
    /// a per-round coin flip (default 30 s leases lose whole peer blocks to
    /// a 20 s storm plus its retry tail). Five-minute leases make every
    /// replica adopted during warmup outlive the horizon deterministically
    /// while keeping the paper's purge semantics on a WAN-honest timescale.
    /// The quick shape keeps the 30 s/10 s defaults — its shorter storm
    /// fits inside them, and they exercise renewal traffic under shedding
    /// on CI cadence.
    metro_leases: bool,
    /// Per-tick software budget, provisioned for the shape's federation
    /// size (see [`OPS_BUDGET`]).
    ops_budget: u32,
}

impl Shape {
    fn nodes(&self) -> usize {
        self.lans * (1 + self.services_per_lan + self.clients_per_lan)
    }
}

fn build(shape: &Shape, layered: bool) -> Scenario {
    let mut registry = RegistryConfig::default();
    if layered {
        registry.overload = OverloadPolicy {
            // An open-loop flash crowd parks the utilization EWMA far above
            // 100%; the renewal threshold must sit above that plateau or the
            // ladder would shed liveness traffic it exists to protect.
            busy_renewal_pct: 1_000,
            // Wide retry jitter: nacked clients re-arrive smeared across the
            // inter-burst gap instead of forming a secondary burst that can
            // land on a synchronized renewal wave.
            retry_jitter: 380,
            ..OverloadPolicy::standard(shape.ops_budget)
        };
    }
    let mut cfg = ScenarioConfig {
        lans: shape.lans,
        clients_per_lan: shape.clients_per_lan,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: shape.lans * shape.services_per_lan,
            queries: 96,
            generalization_rate: 0.3,
            seed: SEED,
        },
        seed: SEED,
        registry,
        partition: PartitionPlan::PerLan,
        workers: sds_bench::parallel::workers(),
        // Standard backoff but with jitter widened to the same end: backoff
        // re-sends of physically dropped queries spread across the gap.
        retry: if layered {
            Some(RetryPolicy { jitter: 400, ..RetryPolicy::standard() })
        } else {
            None
        },
        ..Default::default()
    };
    // Hundreds of clients per LAN pinging in sync would fill the bounded
    // ingress queue with liveness chatter every 5 s; registry beacons cover
    // home liveness, so pinging stays off in both worlds.
    cfg.client.attach.ping_interval = 0;
    cfg.service.attach.ping_interval = 0;
    if shape.metro_leases {
        cfg.service.lease_ms = 300_000;
        cfg.service.renew_interval = secs(60);
    }
    if layered {
        cfg.client.hedge_after_busy = 2;
    }
    Scenario::build(cfg)
}

/// Storm/baseline demand: local-only answers (replication has already run),
/// bounded response sets, a 4 s client budget for backoff to work inside.
fn demand_options() -> QueryOptions {
    QueryOptions {
        max_responses: Some(8),
        ttl: 0,
        timeout: secs(4),
        mode: QueryMode::Unicast,
    }
}

#[derive(Default)]
struct RunReport {
    calm: OverloadLedger,
    storm: OverloadLedger,
    post: OverloadLedger,
    busy_nacks: u64,
    renewal_busy_nacks: u64,
    responses_capped: u64,
    stale_served: u64,
    retries_deduped: u64,
    service_busy: u64,
    adverts_purged: u64,
    dropped_total: u64,
    dropped_renewal_class: u64,
    dropped_by_kind: Vec<(&'static str, u64)>,
    recall_min: f64,
}

fn run(shape: &Shape, layered: bool, plan: &OverloadPlan, bound: SimTime) -> RunReport {
    let mut s = build(shape, layered);
    s.sim.run_until(shape.warmup);
    let registries = s.registries.clone();
    // Warmup calibration: `SDS_O1_DIAG=1` sweeps replica coverage (store
    // size vs the full advert population) every 5 s from warmup and exits.
    // At 230 LANs the federation mesh closes by *gossip* from one seed
    // registry, so full replication is gated on mesh formation: coverage
    // reaches mean=min=1.0 at t≈100 s, which is what sets the full shape's
    // warmup. Probes assume converged replicas; this knob re-derives the
    // number when the shape changes.
    if std::env::var_os("SDS_O1_DIAG").is_some() {
        let full = shape.lans * shape.services_per_lan;
        for k in 0..20u64 {
            s.sim.run_until(shape.warmup + k as SimTime * 5_000);
            let (mut min, mut sum) = (usize::MAX, 0usize);
            for &r in &registries {
                let n = s.sim.handler::<RegistryNode>(r).expect("registry").engine().store().len();
                min = min.min(n);
                sum += n;
            }
            println!(
                "diag t={}ms coverage mean {:.4} min {:.4} ({}/{} per registry)",
                shape.warmup + k as SimTime * 5_000,
                sum as f64 / (registries.len() * full) as f64,
                min as f64 / full as f64,
                min,
                full,
            );
        }
        std::process::exit(0);
    }
    for &r in &registries {
        s.sim.set_node_capacity(r, Some(CAPACITY));
    }

    let opts = demand_options();
    let total_clients = s.clients.len();
    // Interleave consecutive issues across LANs so every event's burst
    // spreads over the whole metro instead of slamming one registry.
    let mut cursor = 0usize;
    let mut qi = 0usize;
    for i in 0..plan.events.len() {
        let ev = plan.events[i];
        s.sim.run_until(shape.warmup + ev.at);
        for _ in 0..ev.queries {
            let ci = match ev.lan {
                Some(l) => l * shape.clients_per_lan + cursor % shape.clients_per_lan,
                None => {
                    (cursor % shape.lans) * shape.clients_per_lan
                        + (cursor / shape.lans) % shape.clients_per_lan
                }
            };
            s.issue(ci % total_clients, qi, opts.clone());
            cursor += 1;
            qi += 1;
        }
    }

    // Quiesce until one recovery bound past the storm, then probe recall:
    // one ttl-0 unicast query per probe against the probing client's home
    // registry, with an *unbounded* response budget. The anti-entropy plane
    // replicates every advert to every registry, so a single home's local
    // store must hold the full metro view — scoring it against the global
    // oracle is exactly the recovery claim (the replicated view survived
    // the storm, no lease expired anywhere, and the registry serves
    // full-fidelity answers again). Federated ttl-4 floods are the wrong
    // instrument here: over a 230-registry full mesh, loop-avoided
    // forwarding delivers ~229 duplicate copies of each probe to every
    // registry, so the measurement itself becomes a fresh flash crowd and
    // the ladder rightly engages against it. Probes are still staggered so
    // their (cheap) response traffic never stacks into a burst.
    let probe_at = shape.warmup + plan.storm_end + bound;
    let probe_spacing: SimTime = 250;
    let probe_opts = QueryOptions {
        max_responses: None,
        ttl: 0,
        timeout: secs(4),
        mode: QueryMode::Unicast,
    };
    let probes = 64.min(s.queries.len()).min(total_clients);
    let mut expected = Vec::new();
    for p in 0..probes {
        s.sim.run_until(probe_at + p as SimTime * probe_spacing);
        let q = s.queries[p].clone();
        expected.push(s.expected_now(&q));
        let ci = (p % shape.lans) * shape.clients_per_lan + p / shape.lans;
        s.issue(ci % total_clients, p, probe_opts.clone());
    }
    s.sim.run_until(probe_at + probes as SimTime * probe_spacing + secs(4));

    let mut rep = RunReport { recall_min: 1.0, ..RunReport::default() };
    let storm_abs = (shape.warmup + plan.storm_start, shape.warmup + plan.storm_end);
    for ci in 0..total_clients {
        for cq in s.completed(ci) {
            if cq.sent_at >= probe_at {
                continue; // recall probes are scored separately below
            }
            let window = if cq.sent_at < storm_abs.0 {
                &mut rep.calm
            } else if cq.sent_at < storm_abs.1 {
                &mut rep.storm
            } else {
                &mut rep.post
            };
            window.record(
                cq.first_response_at.is_some(),
                cq.first_response_at.map(|t| t - cq.sent_at),
                cq.busy_nacks,
                cq.retries,
            );
        }
    }
    for p in 0..probes {
        let ci = (p % shape.lans) * shape.clients_per_lan + p / shape.lans;
        let probe = s
            .completed(ci % total_clients)
            .iter()
            .find(|cq| cq.sent_at >= probe_at)
            .expect("recall probe completed");
        let got: Vec<_> = probe.hits.iter().map(|h| h.advert.provider).collect();
        let r = recall(&expected[p], &got);
        if r < 1.0 {
            // Leave a usable trail when the recovery assertion is about to
            // fail: which probe, what it expected, and how its wire exchange
            // actually went.
            let home = s
                .sim
                .handler::<ClientNode>(s.clients[ci % total_clients])
                .and_then(|c| c.home_registry());
            println!(
                "probe {p} (client {ci}, home {home:?}): recall {r:.4} — expected {} got {} \
                 (matched {}), dispatched={} answered={} responses={} busy={} retries={}",
                expected[p].len(),
                got.len(),
                got.iter().filter(|pr| expected[p].contains(pr)).count(),
                probe.dispatched,
                probe.first_response_at.is_some(),
                probe.responses_received,
                probe.busy_nacks,
                probe.retries,
            );
        }
        if r < rep.recall_min {
            rep.recall_min = r;
        }
    }

    for &r in &registries {
        let st = s.sim.handler::<RegistryNode>(r).expect("registry handler").stats;
        rep.busy_nacks += st.busy_nacks;
        rep.renewal_busy_nacks += st.renewal_busy_nacks;
        rep.responses_capped += st.responses_capped;
        rep.stale_served += st.stale_served;
        rep.retries_deduped += st.retries_deduped;
        rep.adverts_purged += st.adverts_purged;
    }
    for &(n, _) in &s.services {
        rep.service_busy += s.sim.handler::<ServiceNode>(n).expect("service handler").stats.busy_nacks;
    }
    let net = s.sim.stats();
    rep.dropped_total = net.capacity_dropped_messages;
    rep.dropped_renewal_class = ["renew", "publish"]
        .iter()
        .map(|k| net.capacity_dropped(k))
        .sum();
    rep.dropped_by_kind = net.capacity_drops_by_kind().collect();
    rep
}

fn main() {
    let quick = std::env::var_os("SDS_BENCH_QUICK").is_some();
    let shape = if quick {
        Shape {
            lans: 12,
            services_per_lan: 10,
            clients_per_lan: 40,
            warmup: 15_250,
            storm_start: 10_000,
            storm_end: 20_000,
            horizon: 30_000,
            metro_leases: false,
            ops_budget: OPS_BUDGET,
        }
    } else {
        Shape {
            lans: 230,
            services_per_lan: 20,
            clients_per_lan: 415,
            warmup: 105_250,
            storm_start: 15_000,
            storm_end: 35_000,
            horizon: 55_000,
            metro_leases: true,
            ops_budget: 2 * OPS_BUDGET,
        }
    };
    let bound: SimTime = std::env::var("SDS_RECOVERY_BOUND")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let plan = OverloadPlan::flash_crowd(
        BASE_PER_LAN * shape.lans as u32,
        SURGE,
        INTERVAL,
        shape.storm_start,
        shape.storm_end,
        shape.horizon,
        SEED,
    );
    println!(
        "O1: {} nodes ({} LANs), {} offered queries ({} in the 10x storm), \
         capacity {}op/ms q{}, recovery bound {}ms\n",
        shape.nodes(),
        shape.lans,
        plan.total_queries(),
        plan.offered_between(shape.storm_start, shape.storm_end),
        CAPACITY.ops_per_tick,
        CAPACITY.queue_limit,
        bound,
    );

    let mut h = Harness::from_args();
    let baseline = run(&shape, false, &plan, bound);
    let layered = run(&shape, true, &plan, bound);

    let mut table = Table::new(&[
        "world", "window", "offered", "answered", "goodput", "busy q", "retried", "p50 ms",
        "p95 ms",
    ]);
    for (world, rep) in [("baseline", &baseline), ("layered", &layered)] {
        for (window, l) in
            [("calm", &rep.calm), ("storm", &rep.storm), ("post", &rep.post)]
        {
            table.row(&[
                world.into(),
                window.into(),
                l.offered.to_string(),
                l.answered.to_string(),
                f2(l.goodput()),
                l.busy_nacked.to_string(),
                l.retried.to_string(),
                l.latency_percentile(50).to_string(),
                l.latency_percentile(95).to_string(),
            ]);
        }
    }
    table.print("O1: goodput vs offered load, overload layer off/on");
    println!(
        "baseline: {} capacity drops, recall {:.2} | layered: {} capacity drops, \
         {} busy nacks, {} capped, {} stale, {} retries deduped, recall {:.2}",
        baseline.dropped_total,
        baseline.recall_min,
        layered.dropped_total,
        layered.busy_nacks,
        layered.responses_capped,
        layered.stale_served,
        layered.retries_deduped,
        layered.recall_min,
    );
    println!(
        "layered drops by kind: {:?} | purged: baseline {} layered {}",
        layered.dropped_by_kind, baseline.adverts_purged, layered.adverts_purged
    );

    let (g_off, g_on) = (baseline.storm.goodput(), layered.storm.goodput());
    h.record_value("o1/storm-goodput/baseline", g_off);
    h.record_value("o1/storm-goodput/layered", g_on);
    h.record_value(
        "o1/storm-p95-s/layered",
        layered.storm.latency_percentile(95) as f64 / 1e3,
    );
    h.record_value("o1/recovery-recall/layered", layered.recall_min);

    assert!(
        g_off < 0.6,
        "the storm must actually overwhelm the unprotected world (goodput {g_off:.2})"
    );
    assert!(
        g_on >= 2.0 * g_off,
        "layered storm goodput {g_on:.2} must be >=2x baseline {g_off:.2}"
    );
    assert!(layered.busy_nacks > 0, "the busy band must have engaged");
    assert_eq!(
        layered.renewal_busy_nacks, 0,
        "renewals are never shed while query shedding suffices"
    );
    assert_eq!(layered.service_busy, 0, "no provider saw a renewal-class nack");
    // The ingress queue is FIFO — a saturated storm tick can physically drop
    // a renewal — but the layer's end-to-end guarantee holds: ack-retries
    // re-send every dropped renewal and no lease ever expires.
    assert_eq!(
        layered.adverts_purged, 0,
        "no lease expires under the storm ({} renewal-class frames were \
         physically dropped and healed by ack-retries)",
        layered.dropped_renewal_class
    );
    assert_eq!(
        layered.recall_min, 1.0,
        "full recall within one recovery bound of the storm ending"
    );
    println!(
        "\nstorm goodput {g_on:.2} vs {g_off:.2} unprotected ({:.1}x), renewal classes \
         untouched, recall {:.2} within {bound}ms of storm end.",
        if g_off > 0.0 { g_on / g_off } else { f64::INFINITY },
        layered.recall_min,
    );
    h.finish();
}
