//! A1 — Ablation: push advertisements vs forward queries (paper §4.9).
//!
//! "There are lots of different design choices, e.g. to push or pull
//! advertisements between registries … Strategies for forwarding
//! advertisements or queries are part of the subject registry cooperation."
//!
//! The same federated world is run with (a) query forwarding only (the
//! default), (b) advert replication only, and (c) both. Replication moves
//! cost from query time (WAN forwards, response latency) to publish time
//! (periodic pushes of full — large, semantic — advertisements); which wins
//! depends on the query:service-churn ratio, so we sweep the query rate.

use sds_bench::{f2, kib, run_query_phase, Table};
use sds_core::{ForwardStrategy, QueryOptions, SyncMode};
use sds_protocol::ModelId;
use sds_simnet::secs;
use sds_workload::{Deployment, PopulationSpec, Scenario, ScenarioConfig};

struct Mode {
    name: &'static str,
    strategy: ForwardStrategy,
    push_interval: u64,
}

fn run(mode: &Mode, queries: usize, seed: u64) -> (f64, f64, u64, u64, f64) {
    let mut cfg = ScenarioConfig {
        lans: 4,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 24,
            queries: 24,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    };
    cfg.registry.strategy = mode.strategy.clone();
    cfg.registry.advert_push_interval = mode.push_interval;
    // This ablation compares the legacy cooperation modes against each
    // other; the anti-entropy plane (F1) would replicate underneath all
    // three and wash out the contrast.
    cfg.registry.sync_mode = SyncMode::Legacy;
    let mut s = Scenario::build(cfg);
    s.sim.run_until(secs(15)); // let at least one push round happen
    s.sim.reset_stats();
    let report = run_query_phase(
        &mut s,
        queries,
        secs(3),
        QueryOptions { timeout: secs(2), ..Default::default() },
    );
    let stats = s.sim.stats();
    let query_bytes = stats.kind("query").bytes + stats.kind("query-response").bytes;
    let push_bytes = stats.kind("fwd-adverts").bytes;
    (report.recall_mean, report.first_response_ms.mean, query_bytes, push_bytes, {
        stats.wan_bytes as f64
    })
}

fn main() {
    let modes = [
        Mode { name: "forward queries", strategy: ForwardStrategy::Flood { ttl: 4 }, push_interval: 0 },
        Mode { name: "replicate adverts", strategy: ForwardStrategy::None, push_interval: secs(10) },
        Mode {
            name: "both",
            strategy: ForwardStrategy::Flood { ttl: 4 },
            push_interval: secs(10),
        },
    ];
    let mut table = Table::new(&[
        "cooperation",
        "queries",
        "recall",
        "1st-resp ms",
        "query KiB",
        "push KiB",
        "WAN KiB",
    ]);
    for queries in [8usize, 64] {
        for mode in &modes {
            let (recall, latency, qb, pb, wan) = run(mode, queries, 51);
            table.row(&[
                mode.name.into(),
                queries.to_string(),
                f2(recall),
                f2(latency),
                kib(qb),
                kib(pb),
                f2(wan / 1024.0),
            ]);
        }
    }
    table.print("A1: registry cooperation — query forwarding vs advert replication");
    println!(
        "Expected shape: replication answers locally (lowest first-response latency,\n\
         near-zero query traffic) but pays a constant push stream of large semantic\n\
         adverts, so it wins only when queries are frequent relative to the push\n\
         budget; forwarding pays per query. 'Both' buys latency at maximal traffic."
    );
}
