//! F1 — Federation replication cost: anti-entropy digest/delta sync vs
//! full-state advert push.
//!
//! The paper's conceptual architecture leaves registry cooperation open
//! ("strategies for forwarding advertisements … are part of the subject
//! registry cooperation"). The legacy plane re-ships every first-hand
//! advertisement — full, semantic, large — to every peer on every push
//! round, oblivious to what changed. The anti-entropy plane exchanges
//! fixed-size per-bucket digests and ships only what the peer is missing,
//! delta-encoding renewals of adverts the peer has already acknowledged.
//!
//! Both planes run the same federated world (same seed, same service churn,
//! same renewal cadence) at growing federation sizes. Reported per size:
//!
//! * WAN replication bytes over the steady-state window (push bytes vs
//!   digest + delta + ack bytes) and the reduction ratio;
//! * worst replica staleness: the longest any registry's live view stayed
//!   divergent (missing or version-stale) from an origin's first-hand truth
//!   ([`sds_metrics::StalenessTracker`], sampled every 2.5 s).
//!
//! Anti-entropy must cut replication bytes ≥ 5× at the largest federation
//! size while keeping staleness bounded near the sync cadence — asserted,
//! so a regression fails the run. Ratio and staleness land in
//! `target/bench-history.jsonl` (`f1/wan-bytes-ratio`,
//! `f1/staleness-antientropy-s`).

use std::collections::BTreeMap;

use sds_bench::harness::Harness;
use sds_bench::{f2, kib, Table};
use sds_core::{RegistryNode, SyncMode};
use sds_metrics::StalenessTracker;
use sds_protocol::ModelId;
use sds_simnet::secs;
use sds_workload::{ChurnPlan, Deployment, PopulationSpec, Scenario, ScenarioConfig};

struct Outcome {
    repl_bytes: u64,
    staleness_ms: u64,
}

/// Divergence keys at one instant: `(registry index, advert id)` for every
/// live first-hand advert some *other* live registry is missing or holds at
/// an older version.
fn divergent_keys(s: &Scenario) -> Vec<(u32, u32, u128)> {
    let now = s.sim.now();
    let mut views: Vec<BTreeMap<u128, u32>> = Vec::new();
    let mut first_hand: Vec<Vec<(u128, u32)>> = Vec::new();
    for &r in &s.registries {
        let node = s.sim.handler::<RegistryNode>(r).unwrap();
        let store = node.engine().store();
        let mut view = BTreeMap::new();
        let mut fh = Vec::new();
        for st in store.live(now) {
            view.insert(st.advert.id.0, st.advert.version);
            if st.source == st.advert.provider {
                fh.push((st.advert.id.0, st.advert.version));
            }
        }
        views.push(view);
        first_hand.push(fh);
    }
    let mut keys = Vec::new();
    for (yi, fh) in first_hand.iter().enumerate() {
        for &(id, version) in fh {
            for (xi, view) in views.iter().enumerate() {
                if xi != yi && view.get(&id).is_none_or(|&v| v < version) {
                    keys.push((xi as u32, yi as u32, id));
                }
            }
        }
    }
    keys
}

fn run(mode: SyncMode, lans: usize, seed: u64, measure_ms: u64) -> Outcome {
    let mut cfg = ScenarioConfig {
        lans,
        clients_per_lan: 1,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 8 * lans,
            queries: 2,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    };
    cfg.registry.sync_mode = mode;
    if mode == SyncMode::Legacy {
        cfg.registry.advert_push_interval = secs(10);
    }
    // A realistic renewal cadence: long leases, renewals well inside them.
    // The push plane re-ships everything every round regardless; the
    // anti-entropy plane only ships rounds where something changed.
    cfg.service.lease_ms = 120_000;
    cfg.service.renew_interval = secs(40);
    let mut s = Scenario::build(cfg);

    // Service churn through the measurement window: adverts keep appearing,
    // renewing, and expiring, so replication has real work to do and
    // staleness is measured against a moving truth.
    let warmup = secs(30);
    let svc: Vec<_> = s.services.iter().map(|&(n, _)| n).collect();
    let churn = ChurnPlan::exponential(&svc, 150_000.0, 15_000.0, warmup + measure_ms, seed);
    churn.apply(&mut s.sim);

    s.sim.run_until(warmup);
    s.sim.reset_stats();
    if std::env::var_os("SDS_F1_DEBUG").is_some() {
        for (i, &r) in s.registries.iter().enumerate() {
            let peers = s.sim.handler::<RegistryNode>(r).unwrap().peer_ids();
            eprintln!("mode={mode:?} lans={lans} registry {i} ({r:?}) peers={peers:?}");
        }
    }

    let mut tracker = StalenessTracker::new();
    let end = warmup + measure_ms;
    while s.sim.now() < end {
        let next = (s.sim.now() + 2_500).min(end);
        s.sim.run_until(next);
        let keys = divergent_keys(&s);
        if std::env::var_os("SDS_F1_DEBUG").is_some() && !keys.is_empty() {
            let brief: Vec<(u32, u32)> = keys.iter().map(|&(x, y, _)| (x, y)).collect();
            eprintln!("t={} mode={mode:?} lans={lans} divergent(x,y)={brief:?}", s.sim.now());
        }
        tracker.observe(s.sim.now(), keys);
    }

    let st = s.sim.stats();
    let repl_bytes = match mode {
        SyncMode::Legacy => st.kind("fwd-adverts").bytes,
        SyncMode::AntiEntropy => {
            st.kind("sync-digest").bytes
                + st.kind("sync-delta").bytes
                + st.kind("sync-ack").bytes
        }
    };
    Outcome { repl_bytes, staleness_ms: tracker.max_observed(s.sim.now()) }
}

fn main() {
    let quick = std::env::var_os("SDS_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let measure_ms = if quick { secs(60) } else { secs(180) };
    let seed = 71;

    let mut table = Table::new(&[
        "lans",
        "services",
        "push KiB",
        "sync KiB",
        "ratio",
        "stale push (s)",
        "stale sync (s)",
    ]);
    let mut last = None;
    for &lans in sizes {
        let legacy = run(SyncMode::Legacy, lans, seed, measure_ms);
        let anti = run(SyncMode::AntiEntropy, lans, seed, measure_ms);
        assert!(anti.repl_bytes > 0, "anti-entropy plane never exchanged a frame");
        let ratio = legacy.repl_bytes as f64 / anti.repl_bytes as f64;
        table.row(&[
            lans.to_string(),
            (8 * lans).to_string(),
            kib(legacy.repl_bytes),
            kib(anti.repl_bytes),
            f2(ratio),
            f2(legacy.staleness_ms as f64 / 1_000.0),
            f2(anti.staleness_ms as f64 / 1_000.0),
        ]);
        last = Some((lans, ratio, anti.staleness_ms));
    }

    println!(
        "F1: federation replication — full-state push vs anti-entropy sync \
         ({} ms window, seed {seed})",
        measure_ms
    );
    println!("{}", table.render());
    println!(
        "Expected shape: push bytes grow with state x peers x rounds; sync bytes\n\
         grow with change rate (digest rounds are fixed-size, renewals travel as\n\
         56-byte deltas). Staleness stays near the 10 s replication cadence for\n\
         both planes — anti-entropy buys the bytes, not laggier replicas."
    );

    let (lans, ratio, staleness_ms) = last.expect("at least one size ran");
    // The acceptance claim, enforced at the largest (non-quick) size: ≥ 5×
    // fewer replication bytes with staleness bounded well inside a lease.
    if !quick {
        assert!(
            ratio >= 5.0,
            "anti-entropy must cut replication bytes >= 5x at {lans} LANs, got {ratio:.2}x"
        );
        assert!(
            staleness_ms <= 30_000,
            "anti-entropy staleness unbounded: {staleness_ms} ms at {lans} LANs"
        );
    }

    let mut h = Harness::with_filter(None);
    h.record_value("f1/wan-bytes-ratio", ratio);
    h.record_value("f1/staleness-antientropy-s", staleness_ms as f64 / 1_000.0);
}
