//! A3 — Ablation: description size meets narrow tactical links.
//!
//! E8 showed semantic advertisements are several times larger than URI
//! strings; this experiment shows what that *costs* when the medium is a
//! constrained radio channel ("especially in wireless environments, it is
//! important to use bandwidth efficiently"): time-to-publish and query
//! latency across LAN rates, per description model, with and without
//! binary-XML compression.

use sds_bench::{f2, Table};
use sds_core::{
    ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig,
    ServiceNode,
};
use sds_protocol::{Codec, Compression, DiscoveryMessage, ModelId, QueryPayload};
use sds_semantic::{ServiceRequest, SubsumptionIndex};
use sds_simnet::{secs, Sim, SimConfig, Topology};
use sds_workload::{battlefield, PopulationSpec, Workload};
use std::sync::Arc;

/// Builds one LAN at `rate_kbps` with a registry, 8 services of `model`,
/// and a client; returns (registry fill time ms, mean first-response ms).
fn run(model: ModelId, rate_kbps: u32, compression: Compression, seed: u64) -> (u64, f64) {
    let (ont, classes) = battlefield();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let w = Workload::generate(
        &ont,
        &classes,
        &PopulationSpec { model, services: 8, queries: 8, generalization_rate: 0.3, seed },
    );
    let codec = Codec::new(compression);

    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> =
        Sim::new(SimConfig { lan_rate_kbps: rate_kbps, ..Default::default() }, topo, seed);
    let r = sim.add_node(
        lan,
        Box::new(RegistryNode::new(
            RegistryConfig { codec, ..Default::default() },
            Some(idx.clone()),
        )),
    );
    for d in &w.descriptions {
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                ServiceConfig { codec, ..Default::default() },
                vec![d.clone()],
                Some(idx.clone()),
            )),
        );
    }
    let client = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig { codec, ..Default::default() })),
    );

    // Time until all 8 adverts are stored.
    let mut fill_ms = u64::MAX;
    for step in 0..60_000u64 {
        sim.run_until(step * 10);
        if sim.handler::<RegistryNode>(r).unwrap().engine().store().len() == 8 {
            fill_ms = sim.now();
            break;
        }
    }

    // Query latency under the same constrained medium.
    let mut latencies = Vec::new();
    for (qi, q) in w.queries.iter().enumerate() {
        let payload = match q {
            QueryPayload::Semantic(req) => {
                // Keep the request answerable: offer the common inputs.
                let mut req: ServiceRequest = req.clone();
                req.provided_inputs = vec![classes.area_of_interest, classes.unit_id];
                QueryPayload::Semantic(req)
            }
            other => other.clone(),
        };
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(ctx, payload, QueryOptions { timeout: secs(8), ..Default::default() });
        });
        let deadline = fill_ms + (qi as u64 + 1) * secs(10);
        sim.run_until(deadline);
    }
    let done = &sim.handler::<ClientNode>(client).unwrap().completed;
    for q in done {
        if let Some(t) = q.first_response_at {
            latencies.push((t - q.sent_at) as f64);
        }
    }
    let mean = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    (fill_ms, mean)
}

fn main() {
    let mut table = Table::new(&[
        "LAN rate",
        "model",
        "codec",
        "publish-all ms",
        "query 1st-resp ms",
    ]);
    for rate in [64u32, 256, 0] {
        for model in [ModelId::Uri, ModelId::Semantic] {
            for (cname, compression) in
                [("plain", Compression::None), ("binXML", Compression::BinaryXml)]
            {
                let (fill, latency) = run(model, rate, compression, 71);
                table.row(&[
                    if rate == 0 { "unlimited".into() } else { format!("{rate} kbps") },
                    format!("{model:?}"),
                    cname.into(),
                    fill.to_string(),
                    f2(latency),
                ]);
            }
        }
    }
    table.print("A3: publish/query latency on constrained links, by model and codec");
    println!(
        "Expected shape: on an unlimited medium the model makes no latency difference;\n\
         at tactical rates (64 kbps) the large semantic descriptions slow both the\n\
         initial publish burst and query responses by several ×, and binary XML\n\
         claws most of it back — quantifying the paper's compression 'hook'."
    );
}
