//! E6 — Query forwarding strategies in the registry network (paper §4.9).
//!
//! Claim under test: "The key role of the registry network is to forward
//! queries and advertisements between registry nodes on different LANs.
//! Several different strategies … including increasing the reach of a query
//! gradually in several rounds, random walks, or broadcasting in the
//! registry network." On a fixed *chain* overlay of 8 registries (transitive
//! peering off, so reach is really limited by TTL), we compare recall, WAN
//! query traffic, and duplicate drops per strategy.

use sds_bench::{f2, Table};
use sds_core::{
    ClientConfig, ClientNode, ForwardStrategy, QueryOptions, RegistryConfig, RegistryNode,
    ServiceConfig, ServiceNode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_simnet::{secs, NodeId, Sim, SimConfig, Topology};

const LANS: usize = 8;

struct Outcome {
    recall: f64,
    wan_kib_per_query: f64,
    duplicates: u64,
}

/// Sparse overlay with shortcuts: registry i peers with i-1 plus a chord
/// (even i back to registry 0, odd i to i/2) — a cycle-bearing graph where
/// TTL limits reach, walks must choose among branches, and floods meet
/// themselves (duplicate drops).
fn run(strategy: ForwardStrategy, seed: u64) -> Outcome {
    let mut topo = Topology::new();
    let lans: Vec<_> = (0..LANS).map(|_| topo.add_lan()).collect();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);

    let mut regs: Vec<NodeId> = Vec::new();
    for (i, &lan) in lans.iter().enumerate() {
        let cfg = RegistryConfig {
            strategy: strategy.clone(),
            seeds: match i {
                0 => vec![],
                1 => vec![regs[0]],
                _ => vec![regs[i - 1], regs[i / 2]],
            },
            transitive_peering: false,
            signaling_interval: 0,
            response_window: 2_000,
            ..Default::default()
        };
        regs.push(sim.add_node(lan, Box::new(RegistryNode::new(cfg, None))));
    }
    // One matching provider per LAN.
    for &lan in &lans {
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Uri("urn:svc:target".into())],
                None,
            )),
        );
    }
    let client = sim.add_node(lans[LANS - 1], Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(5));
    sim.reset_stats();

    let n_queries = 10u64;
    for q in 0..n_queries {
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(
                ctx,
                QueryPayload::Uri("urn:svc:target".into()),
                QueryOptions { ttl: 8, timeout: secs(9), ..Default::default() },
            );
        });
        sim.run_until(secs(5 + (q + 1) * 10));
    }

    let done = &sim.handler::<ClientNode>(client).unwrap().completed;
    let recall: f64 =
        done.iter().map(|q| q.hits.len() as f64 / LANS as f64).sum::<f64>() / done.len() as f64;
    let wan_query_bytes = {
        // Queries and responses are the only WAN traffic that scales with the
        // strategy; beacons are LAN-only and peer pings identical across runs.
        let q = sim.stats().kind("query").bytes + sim.stats().kind("query-response").bytes;
        q as f64 / n_queries as f64
    };
    let duplicates: u64 = regs
        .iter()
        .map(|&r| sim.handler::<RegistryNode>(r).unwrap().stats.duplicate_queries_dropped)
        .sum();
    Outcome { recall, wan_kib_per_query: wan_query_bytes / 1024.0, duplicates }
}

fn main() {
    let mut table = Table::new(&["strategy", "recall", "query KiB/query", "dup drops"]);
    let strategies: Vec<(String, ForwardStrategy)> = vec![
        ("flood ttl=2".into(), ForwardStrategy::Flood { ttl: 2 }),
        ("flood ttl=4".into(), ForwardStrategy::Flood { ttl: 4 }),
        ("flood ttl=8".into(), ForwardStrategy::Flood { ttl: 8 }),
        ("ring [1,2,4,8]".into(), ForwardStrategy::ExpandingRing { ttls: vec![1, 2, 4, 8] }),
        ("walk w=1 ttl=8".into(), ForwardStrategy::RandomWalk { walkers: 1, ttl: 8 }),
        ("walk w=2 ttl=8".into(), ForwardStrategy::RandomWalk { walkers: 2, ttl: 8 }),
        ("none".into(), ForwardStrategy::None),
    ];
    for (name, strategy) in strategies {
        let o = run(strategy, 21);
        table.row(&[name, f2(o.recall), f2(o.wan_kib_per_query), o.duplicates.to_string()]);
    }
    table.print("E6: forwarding strategies on an 8-registry sparse overlay (provider on every LAN)");
    println!(
        "Paper expectation: flood recall grows with TTL and with it the per-query\n\
         traffic; the expanding ring stops at the first ring with hits (cheap for\n\
         nearby providers); random walks are cheapest but sacrifice recall —\n\
         deterministic, exhaustive reach needs flooding."
    );
}
