//! E9 — Registry-network survivability by topology (paper §3; MILCOM
//! companion refs to Albert/Jeong/Barabási and Thadakamaila et al.).
//!
//! Claim under test: "properties such as low characteristic path length,
//! good clustering, and robustness to random and targeted failure are all
//! important for survivability … the characteristic path length should be
//! low, with only a few nodes that have long-range connections. This matches
//! quite well with the hybrid topology."

use sds_bench::{f2, Table};
use sds_metrics::{topologies, Graph};
use sds_rand::Seed;

fn giant_after(g: &Graph, fraction_removed: f64, targeted: bool, seed: Seed) -> f64 {
    let n = g.node_count();
    let batch = ((n as f64 * fraction_removed).round() as usize).max(1);
    let report = if targeted {
        g.targeted_removal(batch, 1)
    } else {
        g.random_removal(batch, 1, seed)
    };
    report.giant_fraction[1]
}

fn main() {
    let n = 32;
    let seed = Seed(7).derive("bench.e9");
    let cases: Vec<(&str, Graph)> = vec![
        ("star (centralized)", topologies::star(n)),
        ("ring", topologies::ring(n)),
        ("random p=0.1", topologies::random_connected(n, 0.1, seed)),
        ("super-peer 8x4", topologies::super_peer(8, 4, 4, seed)),
        ("full mesh (decentralized)", topologies::full_mesh(n)),
    ];

    let mut table = Table::new(&[
        "topology",
        "edges",
        "char. path len",
        "clustering",
        "giant @10% rand",
        "giant @30% rand",
        "giant @10% attack",
        "giant @30% attack",
    ]);
    // Each topology's metrics (all-pairs paths + four removal experiments)
    // are independent: compute rows in parallel, render in case order.
    let rows = sds_bench::parallel::map(&cases, |_, (name, g)| {
        [
            name.to_string(),
            g.edge_count().to_string(),
            f2(g.characteristic_path_length().unwrap_or(f64::NAN)),
            f2(g.clustering_coefficient()),
            f2(giant_after(g, 0.10, false, seed.derive("removal.10"))),
            f2(giant_after(g, 0.30, false, seed.derive("removal.30"))),
            f2(giant_after(g, 0.10, true, seed)),
            f2(giant_after(g, 0.30, true, seed)),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    table.print("E9: survivability metrics of registry-network topologies (n=32)");
    println!(
        "Paper expectation: the star has the shortest paths but shatters under attack\n\
         (single point of failure); the full mesh survives everything but at O(n^2)\n\
         link cost; the super-peer hybrid combines short paths, high clustering, and\n\
         graceful degradation at a modest edge budget."
    );
}
