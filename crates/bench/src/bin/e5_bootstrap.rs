//! E5 — Registry discovery and federation bootstrap (paper §4.5, Fig. 4).
//!
//! Claim under test: "Registries may be discovered either by manually
//! configuring the registry endpoint or by clients actively using
//! local-scoped multicast … Also, registry nodes could issue local beacon
//! messages, enabling clients to do passive registry discovery" — and on the
//! WAN, a few seeds suffice to wire a full federation. We measure
//! time-to-attach per bootstrap mode and time-to-full-mesh per federation
//! size.

use sds_bench::{f2, Table};
use sds_core::{
    AttachConfig, Bootstrap, ClientConfig, ClientNode, RegistryConfig, RegistryNode,
};
use sds_protocol::DiscoveryMessage;
use sds_simnet::{secs, NodeId, Sim, SimConfig, Topology};

/// Time until a freshly added client attaches, and probe/beacon messages
/// spent until then.
fn time_to_attach(bootstrap: Bootstrap, beacon_interval: u64, seed: u64) -> (u64, u64) {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);
    let r = sim.add_node(
        lan,
        Box::new(RegistryNode::new(
            RegistryConfig { beacon_interval, ..Default::default() },
            None,
        )),
    );
    // Let the registry's initial beacon pass so we measure steady state.
    sim.run_until(secs(1));
    let c = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig {
            attach: AttachConfig { bootstrap, ..Default::default() },
            ..Default::default()
        })),
    );
    let t0 = sim.now();
    let mut attached_at = None;
    for step in 0..20_000u64 {
        sim.run_until(t0 + step * 10);
        if sim.handler::<ClientNode>(c).unwrap().home_registry() == Some(r) {
            attached_at = Some(sim.now() - t0);
            break;
        }
    }
    let msgs = sim.stats().kind("probe").messages + sim.stats().kind("beacon").messages;
    (attached_at.expect("client attaches eventually"), msgs)
}

/// Time until every registry in a seeded federation knows every other.
fn time_to_full_mesh(n: usize, seed: u64) -> (u64, usize) {
    let mut topo = Topology::new();
    let lans: Vec<_> = (0..n).map(|_| topo.add_lan()).collect();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);
    let mut regs: Vec<NodeId> = Vec::new();
    for (i, &lan) in lans.iter().enumerate() {
        let seeds = if i == 0 { vec![] } else { vec![regs[0]] };
        regs.push(sim.add_node(
            lan,
            Box::new(RegistryNode::new(RegistryConfig { seeds, ..Default::default() }, None)),
        ));
    }
    for step in 0..1_000u64 {
        sim.run_until(step * 500);
        let full = regs.iter().all(|&r| {
            sim.handler::<RegistryNode>(r).unwrap().peer_ids().len() == n - 1
        });
        if full {
            return (sim.now(), n - 1);
        }
    }
    (u64::MAX, 0)
}

fn main() {
    let mut t1 = Table::new(&["bootstrap", "time to attach (ms)", "probe+beacon msgs"]);
    for (name, bootstrap) in [
        ("manual (static)", Bootstrap::Static(NodeId(0))),
        ("active multicast", Bootstrap::Multicast),
        ("passive beacons", Bootstrap::PassiveOnly),
    ] {
        let (ms, msgs) = time_to_attach(bootstrap, secs(5), 9);
        t1.row(&[name.into(), ms.to_string(), msgs.to_string()]);
    }
    t1.print("E5a: LAN registry discovery latency by bootstrap mode (5 s beacons)");

    let mut t2 = Table::new(&["registries", "seeds", "time to full mesh (s)"]);
    for n in [2usize, 4, 8, 16] {
        let (ms, _) = time_to_full_mesh(n, 11);
        t2.row(&[n.to_string(), "1".into(), f2(ms as f64 / 1000.0)]);
    }
    t2.print("E5b: WAN federation formation (every registry seeded with registry 0)");
    println!(
        "Paper expectation: manual configuration is instant but manual; active probing\n\
         attaches within a round-trip; passive discovery waits about half a beacon\n\
         period. One seed plus transitive peering wires the full mesh within a few\n\
         15-second signaling (gossip) rounds, growing gently with federation size."
    );
}
