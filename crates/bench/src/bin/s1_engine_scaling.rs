//! S1 — Engine scaling on a multicast-heavy LAN discovery workload.
//!
//! The paper's evaluation currency is message counts and bytes under churn;
//! every experiment is therefore bounded by how fast the discrete-event core
//! pushes deliveries. This benchmark drives the raw engine (no protocol
//! stack) with the access pattern that dominates discovery traffic: periodic
//! link-local multicast beacons on 50-node LANs — the WS-Discovery-style
//! probe/announce storm — plus a sparse unicast response current. Each
//! multicast fans one logical transmission out to 49 receivers, so payload
//! handling per *delivery*, not per *send*, is the hot path.
//!
//! Three dimensions are measured:
//!
//! * **delivery mode** — `shared` reads each payload through the shared
//!   `Rc` (zero-copy fast path); `owning` takes it by value, forcing a
//!   clone per delivered copy (≈ the pre-optimization engine);
//! * **engine** — `seq` is the sequential engine; `parW` is the partitioned
//!   engine (`PartitionPlan::Domains(W)`, W worker threads). The `≥ 2×`
//!   speedup acceptance check runs only in full mode on machines with at
//!   least 4 cores — on smaller machines the ratio is still measured and
//!   recorded, just not asserted;
//! * **scale** — up to 10⁶ nodes (S2's table). The million-node run also
//!   reports resident bytes per node (RSS delta across build + run), the
//!   number the struct-of-arrays node state is accountable to. Quick mode
//!   smoke-runs 10⁶ over a shortened horizon so CI can afford it.
//!
//! Seconds-per-event, clones-per-delivery, engine speedups, and bytes/node
//! land in `target/bench-history.jsonl` (names `s1/...`), arming the
//! order-of-magnitude regression flag and the per-PR `BENCH_<rev>.json`
//! export.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sds_bench::harness::Harness;
use sds_bench::{f2, Table};
use sds_simnet::{
    Ctx, Destination, NodeHandler, NodeId, PartitionPlan, Sim, SimConfig, SimTime, Topology,
};

/// Nodes per LAN: one multicast reaches `LAN_SIZE - 1` receivers.
const LAN_SIZE: usize = 50;
/// Beacon period per node (ms of simulated time).
const PERIOD: SimTime = 1_000;
/// Simulated advertisement payload size (a small semantic profile on the
/// wire).
const PAYLOAD_BYTES: usize = 220;
/// Every k-th received beacon triggers a unicast response (sparse reply
/// current, keeps the workload multicast-dominated).
const REPLY_EVERY: u64 = 64;
/// Target delivered-event budget per size (keeps wall time bounded).
const EVENT_BUDGET: u64 = 5_000_000;
/// The S2 scale target.
const MILLION: usize = 1_000_000;

/// Count of payload clones, bumped by `Frame::clone` — the
/// bytes-allocated-per-delivery proxy. Atomic because the partitioned
/// engine clones from worker threads.
static CLONES: AtomicU64 = AtomicU64::new(0);

/// The beacon payload: an opaque advert-sized byte frame whose clones are
/// counted.
struct Frame(Vec<u8>);

impl Clone for Frame {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Frame(self.0.clone())
    }
}

const TAG_BEACON: u64 = 1;

/// The per-node workload core: count + checksum each delivery, sparsely
/// unicast-reply, re-arm the beacon timer. Shared between the two handler
/// variants so the only difference measured is payload materialization.
#[derive(Default)]
struct BeaconCore {
    received: u64,
    checksum: u64,
}

impl BeaconCore {
    fn start(ctx: &mut Ctx<'_, Frame>) {
        // Deterministic stagger without touching the node RNG: never-drawing
        // nodes must stay RNG-free (the lazy-materialization fast path).
        let offset = 1 + (u64::from(ctx.node().0).wrapping_mul(7919)) % PERIOD;
        ctx.set_timer(offset, TAG_BEACON);
    }

    fn absorb(&mut self, ctx: &mut Ctx<'_, Frame>, from: NodeId, frame: &Frame) {
        self.received += 1;
        // Read the payload for real so delivery cannot be dead-code folded.
        self.checksum = self
            .checksum
            .wrapping_mul(31)
            .wrapping_add(u64::from(frame.0[0]) + frame.0.len() as u64);
        if self.received % REPLY_EVERY == 0 {
            ctx.send(Destination::Unicast(from), Frame(vec![0x5D; 32]), 32, "s1-reply");
        }
    }

    fn beacon(ctx: &mut Ctx<'_, Frame>, tag: u64) {
        if tag == TAG_BEACON {
            let lan = ctx.lan();
            ctx.send(
                Destination::Multicast(lan),
                Frame(vec![0xAB; PAYLOAD_BYTES]),
                PAYLOAD_BYTES as u32,
                "s1-beacon",
            );
            ctx.set_timer(PERIOD, TAG_BEACON);
        }
    }
}

/// The zero-copy fast path: reads each delivery through the shared `Rc`.
#[derive(Default)]
struct SharedBeacon(BeaconCore);

impl NodeHandler<Frame> for SharedBeacon {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Frame>) {
        BeaconCore::start(ctx);
    }

    fn on_shared_message(&mut self, ctx: &mut Ctx<'_, Frame>, from: NodeId, msg: Rc<Frame>) {
        self.0.absorb(ctx, from, &msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Frame>, _timer: sds_simnet::TimerId, tag: u64) {
        BeaconCore::beacon(ctx, tag);
    }
}

/// The by-value path: the default `on_shared_message` materializes an owned
/// copy per delivered multicast copy (≈ the pre-optimization engine, which
/// cloned per receiver at enqueue time).
#[derive(Default)]
struct OwningBeacon(BeaconCore);

impl NodeHandler<Frame> for OwningBeacon {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Frame>) {
        BeaconCore::start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Frame>, from: NodeId, msg: Frame) {
        self.0.absorb(ctx, from, &msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Frame>, _timer: sds_simnet::TimerId, tag: u64) {
        BeaconCore::beacon(ctx, tag);
    }
}

/// Resident set size from `/proc/self/status`, in bytes (Linux only; the
/// bytes/node column reads `0` where the proc file is unavailable).
fn vm_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One benchmark configuration.
struct Spec {
    n: usize,
    shared: bool,
    plan: PartitionPlan,
    workers: usize,
    /// Simulated horizon; `None` sizes rounds from [`EVENT_BUDGET`].
    horizon: Option<SimTime>,
}

struct RunReport {
    events: u64,
    wall_s: f64,
    clones: u64,
    deliveries: u64,
    /// RSS growth across sim build + run, per node.
    rss_bytes_per_node: u64,
}

fn run_one(spec: &Spec) -> RunReport {
    let n = spec.n;
    let lans = n.div_ceil(LAN_SIZE);
    let mut topo = Topology::new();
    let lan_ids: Vec<_> = (0..lans).map(|_| topo.add_lan()).collect();
    let rss_before = vm_rss_bytes();
    let mut sim: Sim<Frame> = Sim::new_partitioned(SimConfig::default(), topo, 0x51, spec.plan);
    sim.set_workers(spec.workers);
    for i in 0..n {
        let handler: Box<dyn NodeHandler<Frame>> = if spec.shared {
            Box::new(SharedBeacon::default())
        } else {
            Box::new(OwningBeacon::default())
        };
        sim.add_node(lan_ids[i / LAN_SIZE], handler);
    }
    let horizon = spec.horizon.unwrap_or_else(|| {
        // Rounds sized so deliveries ≈ EVENT_BUDGET, at least one full period.
        let per_round = (n as u64) * (LAN_SIZE as u64 - 1);
        (EVENT_BUDGET / per_round.max(1)).clamp(1, 200) * PERIOD + PERIOD
    });

    CLONES.store(0, Ordering::Relaxed);
    let start = Instant::now();
    sim.run_until(horizon);
    let wall_s = start.elapsed().as_secs_f64();
    let clones = CLONES.load(Ordering::Relaxed);
    let rss_after = vm_rss_bytes();

    let deliveries = sim.stats().delivered_messages;
    RunReport {
        events: sim.events_processed(),
        wall_s,
        clones,
        deliveries,
        rss_bytes_per_node: rss_after.saturating_sub(rss_before) / n as u64,
    }
}

fn engine_label(plan: PartitionPlan, workers: usize) -> String {
    match plan {
        PartitionPlan::Single => "seq".into(),
        _ => format!("par{workers}"),
    }
}

fn main() {
    let quick = std::env::var_os("SDS_BENCH_QUICK").is_some();

    let mut h = Harness::from_args();
    let mut table = Table::new(&[
        "engine",
        "mode",
        "nodes",
        "lans",
        "events",
        "wall (s)",
        "events/sec",
        "clones/delivery",
        "bytes-cloned/delivery",
        "rss bytes/node",
    ]);

    let run_row = |spec: &Spec, mode: &str, table: &mut Table, h: &mut Harness| -> f64 {
        let r = run_one(spec);
        let evps = r.events as f64 / r.wall_s;
        let cpd = r.clones as f64 / r.deliveries.max(1) as f64;
        let engine = engine_label(spec.plan, spec.workers);
        table.row(&[
            engine.clone(),
            mode.to_string(),
            spec.n.to_string(),
            spec.n.div_ceil(LAN_SIZE).to_string(),
            r.events.to_string(),
            format!("{:.3}", r.wall_s),
            format!("{:.0}", evps),
            f2(cpd),
            format!("{:.0}", cpd * PAYLOAD_BYTES as f64),
            r.rss_bytes_per_node.to_string(),
        ]);
        // Historical names (seq × mode) keep their original `s1/<mode>/...`
        // form so bench-history stays one continuous series; the engine
        // dimension and the million-node metrics get their own names.
        if spec.plan == PartitionPlan::Single {
            h.record_value(&format!("s1/{mode}/{}/sec-per-event", spec.n), r.wall_s / r.events as f64);
            h.record_value(&format!("s1/{mode}/{}/clones-per-delivery", spec.n), cpd);
        } else {
            h.record_value(
                &format!("s1/engine/{engine}/{}/sec-per-event", spec.n),
                r.wall_s / r.events as f64,
            );
        }
        if spec.n >= MILLION {
            h.record_value("s1/million/sec-per-event", r.wall_s / r.events as f64);
            h.record_value("s1/million/clones-per-delivery", cpd);
            h.record_value("s1/million/rss-bytes-per-node", r.rss_bytes_per_node as f64);
        }
        evps
    };

    // ---- Delivery-mode sweep on the sequential engine (historical series).
    let sizes: &[usize] = if quick { &[100, 1_000] } else { &[100, 1_000, 10_000, 100_000] };
    for &(mode, shared) in &[("shared", true), ("owning", false)] {
        for &n in sizes {
            let spec =
                Spec { n, shared, plan: PartitionPlan::Single, workers: 1, horizon: None };
            run_row(&spec, mode, &mut table, &mut h);
        }
    }

    // ---- Engine sweep: sequential vs partitioned at 2 and 4 workers.
    let engine_n = if quick { 1_000 } else { 100_000 };
    let seq_spec = Spec {
        n: engine_n,
        shared: true,
        plan: PartitionPlan::Single,
        workers: 1,
        horizon: None,
    };
    let seq_evps = run_row(&seq_spec, "shared", &mut table, &mut h);
    let mut par4_evps = 0.0;
    for workers in [2usize, 4] {
        let spec = Spec {
            n: engine_n,
            shared: true,
            plan: PartitionPlan::Domains(workers),
            workers,
            horizon: None,
        };
        let evps = run_row(&spec, "shared", &mut table, &mut h);
        h.record_value(
            &format!("s1/engine/par{workers}/{engine_n}/speedup-vs-seq"),
            evps / seq_evps,
        );
        if workers == 4 {
            par4_evps = evps;
        }
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if !quick && cores >= 4 {
        assert!(
            par4_evps >= 2.0 * seq_evps,
            "4-worker partitioned engine must be ≥2× sequential at {engine_n} nodes \
             on a ≥4-core machine: {par4_evps:.0} vs {seq_evps:.0} events/s"
        );
    } else {
        println!(
            "speedup check: par4 {:.2}× seq at {engine_n} nodes \
             (asserted only in full mode on ≥4 cores; this machine has {cores})",
            par4_evps / seq_evps
        );
    }

    // ---- The million-node run (S2). Quick mode shortens the horizon to a
    // fraction of one beacon period — the stagger spreads first beacons
    // uniformly over the period, so 1/8 of one period still delivers ~6M
    // events — keeping CI wall time bounded while proving 10⁶ nodes build,
    // run, and fit in memory.
    let million_spec = Spec {
        n: MILLION,
        shared: true,
        plan: PartitionPlan::Domains(4.min(cores.max(2))),
        workers: 4.min(cores.max(2)),
        horizon: Some(if quick { PERIOD / 8 } else { PERIOD + 1 }),
    };
    run_row(&million_spec, "shared", &mut table, &mut h);

    table.print("S1: engine throughput on the multicast-heavy LAN discovery workload");
    println!(
        "Workload: {LAN_SIZE}-node LANs, one {PAYLOAD_BYTES}-byte multicast beacon per node\n\
         per {PERIOD} ms, a unicast reply every {REPLY_EVERY} deliveries. events = deliveries\n\
         + timer fires; clones/delivery is the allocation proxy (payload materializations\n\
         per delivered copy); rss bytes/node is the RSS delta across build + run divided\n\
         by the node count. Values recorded to target/bench-history.jsonl."
    );
    h.finish();
}
