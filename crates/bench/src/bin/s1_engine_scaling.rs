//! S1 — Engine scaling on a multicast-heavy LAN discovery workload.
//!
//! The paper's evaluation currency is message counts and bytes under churn;
//! every experiment is therefore bounded by how fast the discrete-event core
//! pushes deliveries. This benchmark drives the raw engine (no protocol
//! stack) with the access pattern that dominates discovery traffic: periodic
//! link-local multicast beacons on 50-node LANs — the WS-Discovery-style
//! probe/announce storm — plus a sparse unicast response current. Each
//! multicast fans one logical transmission out to 49 receivers, so payload
//! handling per *delivery*, not per *send*, is the hot path.
//!
//! Two delivery modes measure the cost of payload materialization:
//!
//! * **shared** — the handler overrides `on_shared_message` and reads the
//!   payload through the shared `Rc` without ever cloning it (the
//!   post-optimization fast path);
//! * **owning** — the handler takes the payload by value, forcing a clone
//!   per delivered copy (the pre-optimization engine cloned eagerly per
//!   receiver at enqueue time — same allocation count, charged at enqueue
//!   instead of dispatch).
//!
//! Reported per store size: events processed, wall time, events/sec, payload
//! clones per delivery, and a bytes-cloned-per-delivery proxy
//! (clones × payload size). Seconds-per-event and clones-per-delivery land
//! in `target/bench-history.jsonl` (names `s1/<mode>/<n>/...`), arming the
//! order-of-magnitude regression flag.
//!
//! Sizes 10²–10⁵ nodes (quick mode: 10²–10³). Event budget per size is
//! fixed (~5M deliveries) so wall time stays bounded while events/sec
//! remains comparable across sizes.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sds_bench::harness::Harness;
use sds_bench::{f2, Table};
use sds_simnet::{
    Ctx, Destination, NodeHandler, NodeId, Sim, SimConfig, SimTime, Topology,
};

/// Nodes per LAN: one multicast reaches `LAN_SIZE - 1` receivers.
const LAN_SIZE: usize = 50;
/// Beacon period per node (ms of simulated time).
const PERIOD: SimTime = 1_000;
/// Simulated advertisement payload size (a small semantic profile on the
/// wire).
const PAYLOAD_BYTES: usize = 220;
/// Every k-th received beacon triggers a unicast response (sparse reply
/// current, keeps the workload multicast-dominated).
const REPLY_EVERY: u64 = 64;
/// Target delivered-event budget per size (keeps wall time bounded).
const EVENT_BUDGET: u64 = 5_000_000;

/// Count of payload clones, bumped by `Frame::clone` — the
/// bytes-allocated-per-delivery proxy. Single-threaded engine, but an atomic
/// keeps the counter safe if sizes ever fan out.
static CLONES: AtomicU64 = AtomicU64::new(0);

/// The beacon payload: an opaque advert-sized byte frame whose clones are
/// counted.
struct Frame(Vec<u8>);

impl Clone for Frame {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Frame(self.0.clone())
    }
}

const TAG_BEACON: u64 = 1;

/// The per-node workload core: count + checksum each delivery, sparsely
/// unicast-reply, re-arm the beacon timer. Shared between the two handler
/// variants so the only difference measured is payload materialization.
#[derive(Default)]
struct BeaconCore {
    received: u64,
    checksum: u64,
}

impl BeaconCore {
    fn start(ctx: &mut Ctx<'_, Frame>) {
        // Deterministic stagger without touching the node RNG: never-drawing
        // nodes must stay RNG-free (the lazy-materialization fast path).
        let offset = 1 + (u64::from(ctx.node().0).wrapping_mul(7919)) % PERIOD;
        ctx.set_timer(offset, TAG_BEACON);
    }

    fn absorb(&mut self, ctx: &mut Ctx<'_, Frame>, from: NodeId, frame: &Frame) {
        self.received += 1;
        // Read the payload for real so delivery cannot be dead-code folded.
        self.checksum = self
            .checksum
            .wrapping_mul(31)
            .wrapping_add(u64::from(frame.0[0]) + frame.0.len() as u64);
        if self.received % REPLY_EVERY == 0 {
            ctx.send(Destination::Unicast(from), Frame(vec![0x5D; 32]), 32, "s1-reply");
        }
    }

    fn beacon(ctx: &mut Ctx<'_, Frame>, tag: u64) {
        if tag == TAG_BEACON {
            let lan = ctx.lan();
            ctx.send(
                Destination::Multicast(lan),
                Frame(vec![0xAB; PAYLOAD_BYTES]),
                PAYLOAD_BYTES as u32,
                "s1-beacon",
            );
            ctx.set_timer(PERIOD, TAG_BEACON);
        }
    }
}

/// The zero-copy fast path: reads each delivery through the shared `Rc`.
#[derive(Default)]
struct SharedBeacon(BeaconCore);

impl NodeHandler<Frame> for SharedBeacon {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Frame>) {
        BeaconCore::start(ctx);
    }

    fn on_shared_message(&mut self, ctx: &mut Ctx<'_, Frame>, from: NodeId, msg: Rc<Frame>) {
        self.0.absorb(ctx, from, &msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Frame>, _timer: sds_simnet::TimerId, tag: u64) {
        BeaconCore::beacon(ctx, tag);
    }
}

/// The by-value path: the default `on_shared_message` materializes an owned
/// copy per delivered multicast copy (≈ the pre-optimization engine, which
/// cloned per receiver at enqueue time).
#[derive(Default)]
struct OwningBeacon(BeaconCore);

impl NodeHandler<Frame> for OwningBeacon {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Frame>) {
        BeaconCore::start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Frame>, from: NodeId, msg: Frame) {
        self.0.absorb(ctx, from, &msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Frame>, _timer: sds_simnet::TimerId, tag: u64) {
        BeaconCore::beacon(ctx, tag);
    }
}

struct RunReport {
    events: u64,
    wall_s: f64,
    clones: u64,
    deliveries: u64,
}

fn run_one(n: usize, shared: bool) -> RunReport {
    let lans = n.div_ceil(LAN_SIZE);
    let mut topo = Topology::new();
    let lan_ids: Vec<_> = (0..lans).map(|_| topo.add_lan()).collect();
    let cfg = SimConfig::default();
    let mut sim: Sim<Frame> = Sim::new(cfg, topo, 0x51);
    for i in 0..n {
        let handler: Box<dyn NodeHandler<Frame>> = if shared {
            Box::new(SharedBeacon::default())
        } else {
            Box::new(OwningBeacon::default())
        };
        sim.add_node(lan_ids[i / LAN_SIZE], handler);
    }
    // Rounds sized so deliveries ≈ EVENT_BUDGET, at least one full period.
    let per_round = (n as u64) * (LAN_SIZE as u64 - 1);
    let rounds = (EVENT_BUDGET / per_round.max(1)).clamp(1, 200);

    CLONES.store(0, Ordering::Relaxed);
    let start = Instant::now();
    sim.run_until(rounds * PERIOD + PERIOD);
    let wall_s = start.elapsed().as_secs_f64();
    let clones = CLONES.load(Ordering::Relaxed);

    let mut deliveries = 0u64;
    for i in 0..n {
        let node = NodeId(i as u32);
        deliveries += if shared {
            sim.handler::<SharedBeacon>(node).unwrap().0.received
        } else {
            sim.handler::<OwningBeacon>(node).unwrap().0.received
        };
    }
    let timer_fires = (n as u64) * rounds; // one beacon timer per node per round
    RunReport { events: deliveries + timer_fires, wall_s, clones, deliveries }
}

fn main() {
    let quick = std::env::var_os("SDS_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick { &[100, 1_000] } else { &[100, 1_000, 10_000, 100_000] };
    let modes: &[(&str, bool)] = &[("shared", true), ("owning", false)];

    let mut h = Harness::from_args();
    let mut table = Table::new(&[
        "mode",
        "nodes",
        "lans",
        "events",
        "wall (s)",
        "events/sec",
        "clones/delivery",
        "bytes-cloned/delivery",
    ]);

    for &(mode, shared) in modes {
        for &n in sizes {
            let r = run_one(n, shared);
            let evps = r.events as f64 / r.wall_s;
            let cpd = r.clones as f64 / r.deliveries as f64;
            table.row(&[
                mode.to_string(),
                n.to_string(),
                n.div_ceil(LAN_SIZE).to_string(),
                r.events.to_string(),
                format!("{:.3}", r.wall_s),
                format!("{:.0}", evps),
                f2(cpd),
                format!("{:.0}", cpd * PAYLOAD_BYTES as f64),
            ]);
            h.record_value(&format!("s1/{mode}/{n}/sec-per-event"), r.wall_s / r.events as f64);
            h.record_value(&format!("s1/{mode}/{n}/clones-per-delivery"), cpd);
        }
    }

    table.print("S1: engine throughput on the multicast-heavy LAN discovery workload");
    println!(
        "Workload: {LAN_SIZE}-node LANs, one {PAYLOAD_BYTES}-byte multicast beacon per node\n\
         per {PERIOD} ms, a unicast reply every {REPLY_EVERY} deliveries. events = deliveries\n\
         + timer fires; clones/delivery is the allocation proxy (payload materializations\n\
         per delivered copy). Values recorded to target/bench-history.jsonl."
    );
    h.finish();
}
