//! E4 — Leases keep registries fresh under churn (paper §4.8).
//!
//! Claim under test: "to prevent non-existent services from being
//! discovered, aliveness information should be used to delete old service
//! advertisements from the registry … Lack of such mechanisms is a major
//! problem with today's technologies for Web Service discovery [UDDI,
//! ebXML]." We churn the provider population and measure the fraction of
//! returned hits pointing at dead providers, for several lease periods and
//! for a lease-less UDDI-like registry.

use sds_bench::{f2, kib, run_query_phase, Table};
use sds_core::{QueryOptions, ServiceConfig};
use sds_protocol::ModelId;
use sds_registry::LeasePolicy;
use sds_simnet::{secs, NodeId};
use sds_workload::{ChurnPlan, Deployment, PopulationSpec, Scenario, ScenarioConfig};

fn run(lease_ms: u64, leasing: bool, mean_up_s: u64, seed: u64) -> (f64, f64, u64) {
    let mut cfg = ScenarioConfig {
        lans: 2,
        clients_per_lan: 1,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Uri,
            services: 30,
            queries: 40,
            generalization_rate: 0.0,
            seed,
        },
        seed,
        ..Default::default()
    };
    cfg.registry.lease_policy =
        if leasing { LeasePolicy::default() } else { LeasePolicy::no_leasing() };
    cfg.service = ServiceConfig {
        lease_ms,
        // Renew ~3 times per lease; lease-less providers stay silent.
        renew_interval: if leasing { (lease_ms / 3).max(1_000) } else { u64::MAX / 4 },
        ..ServiceConfig::default()
    };
    let mut s = Scenario::build(cfg);

    // Exponential churn on the providers for the whole run.
    let provider_nodes: Vec<NodeId> = s.services.iter().map(|(n, _)| *n).collect();
    let plan = ChurnPlan::exponential(
        &provider_nodes,
        (mean_up_s * 1_000) as f64,
        45_000.0,
        secs(400),
        seed ^ 0xBEEF,
    );
    plan.apply(&mut s.sim);

    s.sim.run_until(secs(10));
    s.sim.reset_stats();
    let report = run_query_phase(
        &mut s,
        60,
        secs(4),
        QueryOptions { timeout: secs(2), ..Default::default() },
    );
    let renew_bytes = s.sim.stats().kind("renew").bytes + s.sim.stats().kind("renew-ack").bytes;
    (report.stale_fraction, report.recall_mean, renew_bytes)
}

fn main() {
    let mut table = Table::new(&[
        "registry",
        "lease",
        "mean up-time",
        "stale hits",
        "recall",
        "renew KiB",
    ]);
    for mean_up_s in [30u64, 90] {
        for (name, lease_ms, leasing) in [
            ("leased", 5_000u64, true),
            ("leased", 15_000, true),
            ("leased", 60_000, true),
            ("UDDI-like (none)", 0, false),
        ] {
            let (stale, recall, renew_bytes) = run(lease_ms, leasing, mean_up_s, 7);
            table.row(&[
                name.into(),
                if leasing { format!("{}s", lease_ms / 1000) } else { "-".into() },
                format!("{mean_up_s}s"),
                f2(stale),
                f2(recall),
                kib(renew_bytes),
            ]);
        }
    }
    table.print("E4: stale responses under provider churn (60 queries over ~4 min)");
    println!(
        "Paper expectation: with leases the stale fraction stays near zero and shrinks\n\
         with the lease period (at the price of renewal traffic); the lease-less\n\
         UDDI-like registry accumulates dead adverts and serves them indefinitely."
    );
}
