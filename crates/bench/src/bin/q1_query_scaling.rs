//! Q1 — Indexed query evaluation vs store size (registry indexing).
//!
//! The paper's conceptual registry must answer subsumption queries over
//! dynamic advert populations; a naive registry re-runs the matchmaker
//! against every stored advert per query, so evaluation cost grows linearly
//! with the store. The indexed store prunes to the postings of the requested
//! concept's related set (ancestors ∪ descendants) — or an exact bucket for
//! URI/template queries — before confirming candidates with the full
//! matchmaker, which is sublinear whenever queries are selective.
//!
//! This binary measures both paths on the same engine at store sizes
//! 10²–10⁵ for all three description models, prints the EXPERIMENTS-style
//! table, and (via the shared harness) appends every median to
//! `target/bench-history.jsonl`, arming the order-of-magnitude regression
//! gate for the next run. Selective workload: URI queries probe one exact
//! URI; template queries one of 64 type URIs; semantic queries ask for a
//! mid-level category covering 1/256 of the leaf classes of a 1364-class
//! parametric taxonomy.

use std::sync::Arc;

use sds_bench::harness::Harness;
use sds_bench::{f2, Table};
use sds_protocol::{
    Advertisement, Description, DescriptionTemplate, ModelId, QueryId, QueryMessage, QueryPayload,
    Uuid,
};
use sds_rand::Rng;
use sds_registry::{
    LeasePolicy, RegistryEngine, SemanticEvaluator, TemplateEvaluator, UriEvaluator,
};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;
use sds_workload::parametric;

/// Distinct template type URIs: a template query for one type matches ~n/64
/// of the store.
const TEMPLATE_TYPES: u32 = 64;

/// The taxonomy every semantic advert draws its category from: 4 roots ×
/// branching 4 × depth 4 = 1364 classes, 1024 of them leaves.
fn taxonomy() -> (Ontology, Vec<ClassId>, ClassId) {
    let ont = parametric(4, 4, 4);
    let leaves: Vec<ClassId> =
        (ont.len() - 1024..ont.len()).map(|i| ClassId(i as u32)).collect();
    // A level-2 class: 4 leaf descendants of 1024 → 1/256 of the store.
    let query_category = ont.lookup("C2_0_0").expect("level-2 class exists");
    (ont, leaves, query_category)
}

fn advert(model: ModelId, i: usize, leaves: &[ClassId], rng: &mut Rng) -> Advertisement {
    let description = match model {
        ModelId::Uri => Description::Uri(format!("urn:svc:q1-{i}")),
        ModelId::Template => Description::Template(DescriptionTemplate {
            name: Some(format!("svc{i}")),
            type_uri: Some(format!("urn:type:{}", rng.gen_range(0..TEMPLATE_TYPES))),
            attrs: Vec::new(),
        }),
        ModelId::Semantic => {
            let cat = leaves[rng.gen_range(0..leaves.len() as u64) as usize];
            let out = leaves[rng.gen_range(0..leaves.len() as u64) as usize];
            Description::Semantic(
                ServiceProfile::new(format!("svc{i}"), cat).with_outputs(&[out]),
            )
        }
    };
    Advertisement { id: Uuid(i as u128 + 1), provider: NodeId(i as u32), description, version: 1 }
}

/// The selective query for `model` against a store of `n` adverts.
fn query(model: ModelId, n: usize, query_category: ClassId) -> QueryMessage {
    let payload = match model {
        ModelId::Uri => QueryPayload::Uri(format!("urn:svc:q1-{}", n / 2)),
        ModelId::Template => QueryPayload::Template(DescriptionTemplate {
            type_uri: Some("urn:type:0".into()),
            ..Default::default()
        }),
        ModelId::Semantic => QueryPayload::Semantic(ServiceRequest::for_category(query_category)),
    };
    // Clients cap responses in every deployed configuration (E2: response
    // implosion), so the benchmarked query does too; this also exercises the
    // bounded top-k selection path.
    QueryMessage {
        id: QueryId { origin: NodeId(0), seq: 1 },
        payload,
        max_responses: Some(32),
        ttl: 0,
        reply_to: None,
    }
}

fn engine_with(n: usize, model: ModelId, leaves: &[ClassId], idx: Arc<SubsumptionIndex>) -> RegistryEngine {
    let mut engine = RegistryEngine::new(LeasePolicy::default());
    engine.register_evaluator(Box::new(UriEvaluator));
    engine.register_evaluator(Box::new(TemplateEvaluator));
    engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));
    let mut rng = Rng::seed_from_u64(0x51_5EED ^ n as u64);
    for i in 0..n {
        engine.publish(advert(model, i, leaves, &mut rng), NodeId(0), 0, 1_000_000);
    }
    engine
}

fn main() {
    let (ont, leaves, query_category) = taxonomy();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let quick = std::env::var_os("SDS_BENCH_QUICK").is_some();
    let sizes: &[usize] =
        if quick { &[100, 1_000] } else { &[100, 1_000, 10_000, 100_000] };

    // Building the stores (up to 3 × 10⁵ publishes) dominates setup and
    // each store is independent, so construction fans out across cores;
    // the timed measurements below stay strictly sequential so medians are
    // never polluted by sibling threads.
    let cases: Vec<(ModelId, usize)> = [ModelId::Uri, ModelId::Template, ModelId::Semantic]
        .into_iter()
        .flat_map(|m| sizes.iter().map(move |&n| (m, n)))
        .collect();
    let engines = sds_bench::parallel::map(&cases, |_, &(model, n)| {
        engine_with(n, model, &leaves, Arc::clone(&idx))
    });

    let mut h = Harness::from_args();
    let mut table =
        Table::new(&["model", "store size", "matches", "indexed µs", "naive µs", "speedup"]);
    let mut speedup_at_max = Vec::new();

    for model in [ModelId::Uri, ModelId::Template, ModelId::Semantic] {
        let mut g = h.group(&format!("q1/{}", format!("{model:?}").to_lowercase()));
        for &n in sizes {
            let engine = &engines[cases
                .iter()
                .position(|&(m, s)| m == model && s == n)
                .expect("every (model, size) case was built")];
            let q = query(model, n, query_category);
            assert_eq!(
                engine.evaluate(&q, 1),
                engine.naive_evaluate(&q, 1),
                "paths agree"
            );
            // Full (uncapped) match count, the table's selectivity column.
            let uncapped = QueryMessage { max_responses: None, ..q.clone() };
            let hits = engine.evaluate(&uncapped, 1).len();

            let indexed = g.bench(&format!("{n}/indexed"), |b| {
                b.iter(|| engine.evaluate(&q, 1))
            });
            let naive = g.bench(&format!("{n}/naive"), |b| {
                b.iter(|| engine.naive_evaluate(&q, 1))
            });
            let (Some(indexed), Some(naive)) = (indexed, naive) else { continue };
            let speedup = naive.median / indexed.median;
            if n == *sizes.last().unwrap() {
                speedup_at_max.push((model, speedup));
            }
            table.row(&[
                format!("{model:?}"),
                n.to_string(),
                hits.to_string(),
                f2(indexed.median * 1e6),
                f2(naive.median * 1e6),
                format!("{speedup:.1}x"),
            ]);
        }
    }

    table.print("Q1: indexed vs naive query evaluation by model and store size");
    for (model, speedup) in &speedup_at_max {
        println!(
            "{model:?} at {} adverts: {speedup:.1}x {}",
            sizes.last().unwrap(),
            if *speedup >= 10.0 { "(>=10x: index pays for itself)" } else { "(below 10x)" },
        );
    }
    println!(
        "\nExpectation: naive cost grows ~linearly with the store; indexed cost\n\
         tracks the candidate set (hits plus confirmations), so the gap widens\n\
         with scale. Medians recorded to target/bench-history.jsonl."
    );
    h.finish();
}
