//! E7 — Description-model expressivity vs evaluation cost (paper §2, §4.2).
//!
//! Claims under test: (a) "by using semantics we can enhance service
//! descriptions, reduce ambiguity and enable dynamic service usage" — i.e.
//! subsumption queries (give me any *SurveillanceService*) are answerable
//! only by the semantic model; (b) "it can become more costly to evaluate
//! queries, since reasoning about service descriptions may be necessary."
//!
//! Part 1 runs the same workload shape under each description model in a
//! live deployment and reports recall. Part 2 micro-times raw registry
//! evaluation per model over a large store.

use std::sync::Arc;
use std::time::Instant;

use sds_bench::{f2, Table};
use sds_core::{ClientNode, QueryOptions};
use sds_protocol::{
    Advertisement, Description, DescriptionTemplate, ModelId, QueryId, QueryMessage, QueryPayload,
    Uuid,
};
use sds_registry::{LeasePolicy, RegistryEngine, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::SubsumptionIndex;
use sds_semantic::{ServiceRequest};
use sds_simnet::{secs, NodeId};
use sds_workload::{battlefield, Deployment, PopulationSpec, Scenario, ScenarioConfig, Workload};

/// The fixed information need: "any SurveillanceService". Deploys the same
/// service population described in `model`, issues the need expressed as
/// well as that model allows, and reports recall against the true set of
/// surveillance providers. `enumerate` lets the URI/template client issue
/// one exact query per known leaf subtype instead (complete taxonomy
/// knowledge assumed).
fn need_recall(model: ModelId, enumerate: bool, seed: u64) -> (usize, f64) {
    let mut s = Scenario::build(ScenarioConfig {
        lans: 2,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec { model, services: 30, queries: 1, generalization_rate: 0.0, seed },
        seed,
        ..Default::default()
    });
    s.sim.run_until(secs(4));
    let c = s.classes;

    // Ground truth: providers whose category is subsumed by Surveillance.
    let category_of = |d: &Description| match d {
        Description::Uri(u) => s.ontology.lookup(u.trim_start_matches("urn:svc:")),
        Description::Template(t) => t
            .type_uri
            .as_deref()
            .and_then(|u| s.ontology.lookup(u.trim_start_matches("urn:svc:"))),
        Description::Semantic(p) => Some(p.category),
    };
    let expected: Vec<NodeId> = s
        .services
        .iter()
        .filter(|(_, d)| {
            category_of(d).is_some_and(|cat| s.idx.is_subclass(cat, c.surveillance))
        })
        .map(|(n, _)| *n)
        .collect();

    let payloads: Vec<QueryPayload> = match (model, enumerate) {
        (ModelId::Semantic, _) => {
            vec![QueryPayload::Semantic(
                ServiceRequest::for_category(c.surveillance)
                    .with_provided_inputs(&[c.area_of_interest, c.unit_id]),
            )]
        }
        (ModelId::Uri, false) => vec![QueryPayload::Uri("urn:svc:SurveillanceService".into())],
        (ModelId::Uri, true) => vec![
            QueryPayload::Uri("urn:svc:RadarService".into()),
            QueryPayload::Uri("urn:svc:SonarService".into()),
        ],
        (ModelId::Template, false) => vec![QueryPayload::Template(DescriptionTemplate {
            type_uri: Some("urn:svc:SurveillanceService".into()),
            ..Default::default()
        })],
        (ModelId::Template, true) => vec![
            QueryPayload::Template(DescriptionTemplate {
                type_uri: Some("urn:svc:RadarService".into()),
                ..Default::default()
            }),
            QueryPayload::Template(DescriptionTemplate {
                type_uri: Some("urn:svc:SonarService".into()),
                ..Default::default()
            }),
        ],
    };

    let n_queries = payloads.len();
    let client = s.clients[0];
    for payload in payloads {
        s.sim.with_node::<ClientNode>(client, |cl, ctx| {
            cl.issue_query(ctx, payload, QueryOptions { timeout: secs(2), ..Default::default() });
        });
        let until = s.sim.now() + secs(3);
        s.sim.run_until(until);
    }
    let got: Vec<NodeId> = s
        .sim
        .handler::<ClientNode>(client)
        .unwrap()
        .completed
        .iter()
        .flat_map(|q| q.hits.iter().map(|h| h.advert.provider))
        .collect();
    (n_queries, sds_metrics::recall(&expected, &got))
}

/// Mean evaluation time (µs) per query over a store of `n` adverts.
fn eval_cost(model: ModelId, n: usize, seed: u64) -> f64 {
    let (ont, classes) = battlefield();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let spec = PopulationSpec {
        model,
        services: n,
        queries: 64,
        generalization_rate: 0.5,
        seed,
    };
    let w = Workload::generate(&ont, &classes, &spec);

    let mut engine = RegistryEngine::new(LeasePolicy::default());
    engine.register_evaluator(Box::new(UriEvaluator));
    engine.register_evaluator(Box::new(TemplateEvaluator));
    engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));
    for (i, d) in w.descriptions.iter().enumerate() {
        let advert = Advertisement {
            id: Uuid(i as u128 + 1),
            provider: NodeId(0),
            description: d.clone(),
            version: 1,
        };
        engine.publish(advert, NodeId(0), 0, 1_000_000);
    }

    let queries: Vec<QueryMessage> = w
        .queries
        .iter()
        .enumerate()
        .map(|(i, p)| QueryMessage {
            id: QueryId { origin: NodeId(1), seq: i as u64 },
            payload: p.clone(),
            max_responses: None,
            ttl: 0,
            reply_to: None,
        })
        .collect();

    // Warm up, then time.
    for q in &queries {
        std::hint::black_box(engine.evaluate(q, 100));
    }
    let rounds = 50;
    let start = Instant::now();
    for _ in 0..rounds {
        for q in &queries {
            std::hint::black_box(engine.evaluate(q, 100));
        }
    }
    start.elapsed().as_micros() as f64 / (rounds * queries.len()) as f64
}

fn main() {
    let mut t1 = Table::new(&["model", "client knowledge", "queries", "recall"]);
    for (model, enumerate, knowledge) in [
        (ModelId::Uri, false, "parent URI only"),
        (ModelId::Uri, true, "full taxonomy"),
        (ModelId::Template, false, "parent URI only"),
        (ModelId::Template, true, "full taxonomy"),
        (ModelId::Semantic, false, "parent concept"),
    ] {
        let (n, recall) = need_recall(model, enumerate, 13);
        t1.row(&[format!("{model:?}"), knowledge.into(), n.to_string(), f2(recall)]);
    }
    t1.print("E7a: answering the need 'any SurveillanceService' per description model");

    let mut t2 = Table::new(&["model", "store size", "eval µs/query"]);
    for model in [ModelId::Uri, ModelId::Template, ModelId::Semantic] {
        for n in [100usize, 1_000, 10_000] {
            t2.row(&[format!("{model:?}"), n.to_string(), f2(eval_cost(model, n, 13))]);
        }
    }
    t2.print("E7b: query evaluation cost by model and store size");
    println!(
        "Paper expectation: URI/template matching cannot express the generalized need\n\
         (recall 0 with one query); it needs one exact query per leaf type and full\n\
         taxonomy knowledge at the client. One semantic query with subsumption gets\n\
         recall 1. The price (E7b): a constant-factor higher evaluation cost."
    );
}
