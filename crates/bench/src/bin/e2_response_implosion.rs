//! E2 — Response implosion and query response control (paper §3.1).
//!
//! Claim under test: "lack of query response control can at worst, if a
//! query is too broad, lead to 'response implosion' at the querying node …
//! The opportunity to allow service selection support in registries is
//! important to relieve constrained clients." We grow the number of matching
//! providers on a LAN and compare the decentralized mode against a registry
//! with per-query `max_responses` k ∈ {1, 5, ∞}.

use sds_bench::{f2, kib, Table};
use sds_core::{
    ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig,
    ServiceNode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_simnet::{secs, Sim, SimConfig, Topology};

struct Run {
    responses: u32,
    hits: usize,
    response_bytes: u64,
}

fn run(providers: usize, registry: bool, max_responses: Option<u16>, seed: u64) -> Run {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);
    if registry {
        sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    }
    for _ in 0..providers {
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Uri("urn:svc:broad".into())],
                None,
            )),
        );
    }
    let client = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(3));
    sim.reset_stats();
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(
            ctx,
            QueryPayload::Uri("urn:svc:broad".into()),
            QueryOptions { max_responses, ..Default::default() },
        );
    });
    sim.run_until(secs(7));
    let q = &sim.handler::<ClientNode>(client).unwrap().completed[0];
    Run {
        responses: q.responses_received,
        hits: q.hits.len(),
        response_bytes: sim.stats().kind("query-response").bytes,
    }
}

fn main() {
    let mut table = Table::new(&[
        "providers",
        "mode",
        "responses",
        "hits",
        "resp KiB",
    ]);
    for providers in [10usize, 20, 40, 80, 160] {
        let configs: [(&str, bool, Option<u16>); 4] = [
            ("decentralized", false, None),
            ("registry k=inf", true, None),
            ("registry k=5", true, Some(5)),
            ("registry k=1", true, Some(1)),
        ];
        for (name, registry, k) in configs {
            let r = run(providers, registry, k, 42);
            table.row(&[
                providers.to_string(),
                name.into(),
                r.responses.to_string(),
                r.hits.to_string(),
                kib(r.response_bytes),
            ]);
        }
    }
    table.print("E2: response implosion vs query response control (1 LAN, broad query)");
    println!(
        "Paper expectation: decentralized responses grow linearly with matching providers\n\
         (implosion, {} responses at 160 providers); a registry collapses them to one\n\
         response whose size is capped by k.",
        f2(160.0)
    );
}
