//! R1 — Recovery time under rolling chaos.
//!
//! The paper's architecture is pitched at *dynamic environments*, where the
//! interesting quantity is not steady-state recall but how fast discovery
//! becomes whole again after each disruption. This experiment rolls three
//! fault windows over a federated deployment — asymmetric WAN loss (replies
//! vanish, pings arrive), a severed WAN pair (partial partition), and a
//! registry crash — heals each, and samples oracle recall plus stale-lease
//! counts until the system recovers (recall 1.0, nothing stale).
//!
//! Two configurations on identical schedules and probes:
//!
//! * **self-healing** — clients re-issue timed-out queries with jittered
//!   exponential backoff and fail over after re-attach, providers retry
//!   unacknowledged publishes/renewals, registries place silent federation
//!   peers on probation (backed-off re-pings, state re-announce on return)
//!   instead of evicting them;
//! * **passive** — the pre-existing periodic machinery only (renew rounds,
//!   signaling gossip, seed retry).
//!
//! Per-window recovery times aggregate over ≥8 seeds; a window that never
//! recovers within the sampled gap is charged the full gap. Mean recovery lands in
//! `target/bench-history.jsonl` (benches `r1/recovery-selfheal`,
//! `r1/recovery-passive`) so CI's regression flag guards them.

use sds_bench::{f2, Table};
use sds_bench::harness::Harness;
use sds_metrics::Summary;
use sds_workload::{run_rolling, RollingChaosConfig, RollingReport};

fn seed_count() -> u64 {
    std::env::var("SDS_CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
}

/// Per-window recovery times in seconds; unrecovered windows are charged
/// the full sampled gap.
fn window_recoveries(report: &RollingReport, gap_ms: u64) -> Vec<f64> {
    report
        .windows
        .iter()
        .map(|w| w.recovery_ms.unwrap_or(gap_ms) as f64 / 1_000.0)
        .collect()
}

fn main() {
    let seeds = seed_count();
    let mut table = Table::new(&[
        "config",
        "seeds",
        "windows",
        "recovery mean (s)",
        "recovery p95 (s)",
        "recovery max (s)",
        "unrecovered",
        "retry publishes",
        "peers reinstated",
    ]);

    let mut means = Vec::new();
    for healing in [true, false] {
        // Seeds are independent simulations: fan them across cores and
        // merge in seed order (deterministic aggregate regardless of
        // scheduling — see tests/engine_equivalence.rs).
        let runs = sds_bench::parallel::map_seeds(seeds, |seed| {
            let cfg = RollingChaosConfig::new(seed, healing);
            let report = run_rolling(&cfg);
            (cfg.gap_ms, report)
        });
        let mut recoveries = Vec::new();
        let mut unrecovered = 0u64;
        let (mut retries, mut reinstated, mut windows) = (0u64, 0u64, 0u64);
        for (gap_ms, report) in &runs {
            unrecovered +=
                report.windows.iter().filter(|w| w.recovery_ms.is_none()).count() as u64;
            windows += report.windows.len() as u64;
            recoveries.extend(window_recoveries(report, *gap_ms));
            retries += report.retry_publishes;
            reinstated += report.peers_reinstated;
        }
        let sum = Summary::of(&recoveries);
        let label = if healing { "self-healing" } else { "passive" };
        table.row(&[
            label.to_string(),
            seeds.to_string(),
            windows.to_string(),
            f2(sum.mean),
            f2(sum.p95),
            f2(sum.max),
            unrecovered.to_string(),
            retries.to_string(),
            reinstated.to_string(),
        ]);
        means.push((label, sum.mean));
    }

    println!("R1: recovery time under rolling chaos ({seeds} seeds, 3 windows each)");
    println!("{}", table.render());

    let mut h = Harness::with_filter(None);
    for (label, mean) in means {
        let name = match label {
            "self-healing" => "r1/recovery-selfheal",
            _ => "r1/recovery-passive",
        };
        h.record_value(name, mean);
    }
}
