//! E11 — Decentralized LAN fallback (paper Fig. 3, §4.7).
//!
//! Claim under test: "If no registry is available, using decentralized LAN
//! service discovery could ensure that local services still can be
//! discovered … a fallback solution to allow local service discovery in the
//! case where no registry nodes are present, which can occur in dynamic
//! environments."
//!
//! We kill the only registry on the LAN and track local discovery success
//! over time, with the fallback enabled and disabled.

use sds_bench::{f2, Table};
use sds_core::{
    ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig,
    ServiceNode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_simnet::{secs, Sim, SimConfig, Topology};

/// Success rate over `n` queries spaced 3 s apart starting at `start`.
fn success_window(
    sim: &mut Sim<DiscoveryMessage>,
    client: sds_simnet::NodeId,
    start: u64,
    n: u64,
) -> f64 {
    let before = sim.handler::<ClientNode>(client).unwrap().completed.len();
    for q in 0..n {
        sim.run_until(start + q * 3_000);
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(
                ctx,
                QueryPayload::Uri("urn:svc:local".into()),
                QueryOptions { timeout: secs(2), ..Default::default() },
            );
        });
    }
    sim.run_until(start + n * 3_000 + 3_000);
    let done = &sim.handler::<ClientNode>(client).unwrap().completed[before..];
    done.iter().filter(|q| !q.hits.is_empty()).count() as f64 / done.len() as f64
}

fn run(fallback: bool, seed: u64) -> (f64, f64, f64) {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);
    let registry =
        sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    for _ in 0..3 {
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                ServiceConfig { fallback_responder: fallback, ..Default::default() },
                vec![Description::Uri("urn:svc:local".into())],
                None,
            )),
        );
    }
    let client = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig { fallback_query: fallback, ..Default::default() })),
    );
    sim.run_until(secs(3));

    let before = success_window(&mut sim, client, secs(3), 5);
    sim.crash_node(registry);
    // Window 1: failure detection in progress (pings, beacon timeout).
    let during = success_window(&mut sim, client, secs(20), 5);
    // Window 2: fallback (if any) fully active.
    let after = success_window(&mut sim, client, secs(45), 5);
    (before, during, after)
}

fn main() {
    let mut table = Table::new(&["fallback", "before crash", "0-15s after", "25-40s after"]);
    for fallback in [false, true] {
        let (b, d, a) = run(fallback, 17);
        table.row(&[
            if fallback { "enabled".into() } else { "disabled".into() },
            f2(b),
            f2(d),
            f2(a),
        ]);
    }
    table.print("E11: local discovery around the loss of the only LAN registry");
    println!(
        "Paper expectation: without the fallback, local discovery dies with the\n\
         registry even though provider and client sit on the same LAN; with the\n\
         fallback, clients multicast queries and providers self-answer once the\n\
         registry silence exceeds the beacon timeout."
    );
}
