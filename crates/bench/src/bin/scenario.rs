//! `scenario` — run a custom deployment from the command line.
//!
//! A downstream-user tool: pick a topology, population, churn level, and
//! query load without writing Rust. Prints the same aggregate report the
//! experiments use.
//!
//! ```text
//! cargo run --release -p sds-bench --bin scenario -- \
//!     --deployment federated --lans 4 --registries-per-lan 2 \
//!     --services 40 --model semantic --queries 50 \
//!     --mean-up-s 60 --seed 7
//! ```

use sds_bench::{f2, kib, run_query_phase, Table};
use sds_core::QueryOptions;
use sds_protocol::ModelId;
use sds_simnet::{secs, NodeId};
use sds_workload::{ChurnPlan, Deployment, PopulationSpec, Scenario, ScenarioConfig};

#[derive(Debug)]
struct Args {
    deployment: Deployment,
    lans: usize,
    services: usize,
    queries: usize,
    model: ModelId,
    generalization: f64,
    mean_up_s: u64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            deployment: Deployment::Federated { registries_per_lan: 1 },
            lans: 4,
            services: 40,
            queries: 40,
            model: ModelId::Semantic,
            generalization: 0.5,
            mean_up_s: 0,
            seed: 0,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario [--deployment centralized|decentralized|federated]\n\
         \x20               [--registries-per-lan N] [--lans N] [--services N]\n\
         \x20               [--queries N] [--model uri|template|semantic]\n\
         \x20               [--generalization F] [--mean-up-s SECS (0=no churn)]\n\
         \x20               [--seed N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut registries_per_lan = 1usize;
    let mut deployment_name = String::from("federated");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--deployment" => deployment_name = val(),
            "--registries-per-lan" => registries_per_lan = val().parse().unwrap_or_else(|_| usage()),
            "--lans" => args.lans = val().parse().unwrap_or_else(|_| usage()),
            "--services" => args.services = val().parse().unwrap_or_else(|_| usage()),
            "--queries" => args.queries = val().parse().unwrap_or_else(|_| usage()),
            "--model" => {
                args.model = match val().as_str() {
                    "uri" => ModelId::Uri,
                    "template" => ModelId::Template,
                    "semantic" => ModelId::Semantic,
                    _ => usage(),
                }
            }
            "--generalization" => args.generalization = val().parse().unwrap_or_else(|_| usage()),
            "--mean-up-s" => args.mean_up_s = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args.deployment = match deployment_name.as_str() {
        "centralized" => Deployment::Centralized,
        "decentralized" => Deployment::Decentralized,
        "federated" => Deployment::Federated { registries_per_lan },
        _ => usage(),
    };
    args
}

fn main() {
    let args = parse_args();
    println!("scenario: {args:#?}");

    let mut s = Scenario::build(ScenarioConfig {
        lans: args.lans,
        deployment: args.deployment.clone(),
        population: PopulationSpec {
            model: args.model,
            services: args.services,
            queries: args.queries.max(1),
            generalization_rate: args.generalization,
            seed: args.seed,
        },
        seed: args.seed,
        ..Default::default()
    });

    if args.mean_up_s > 0 {
        let providers: Vec<NodeId> = s.services.iter().map(|(n, _)| *n).collect();
        ChurnPlan::exponential(
            &providers,
            (args.mean_up_s * 1_000) as f64,
            30_000.0,
            secs(20 + 4 * args.queries as u64),
            args.seed ^ 0xC0DE,
        )
        .apply(&mut s.sim);
    }

    s.sim.run_until(secs(8));
    s.sim.reset_stats();
    let report = run_query_phase(
        &mut s,
        args.queries,
        secs(4),
        QueryOptions { timeout: secs(2), ..Default::default() },
    );

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["queries".into(), report.queries.to_string()]);
    t.row(&["recall (mean)".into(), f2(report.recall_mean)]);
    t.row(&["success rate".into(), f2(report.success_rate)]);
    t.row(&["stale-hit fraction".into(), f2(report.stale_fraction)]);
    t.row(&["responses/query (mean)".into(), f2(report.responses.mean)]);
    t.row(&["first response ms (p50)".into(), f2(report.first_response_ms.p50)]);
    t.row(&["first response ms (p95)".into(), f2(report.first_response_ms.p95)]);
    t.row(&["hits/query (mean)".into(), f2(report.hits.mean)]);
    t.row(&["LAN KiB".into(), kib(s.sim.stats().lan_bytes)]);
    t.row(&["WAN KiB".into(), kib(s.sim.stats().wan_bytes)]);
    t.row(&["messages".into(), s.sim.stats().total_messages().to_string()]);
    t.print("scenario report");
}
