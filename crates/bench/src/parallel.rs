//! A share-nothing parallel experiment driver.
//!
//! Every multi-seed experiment in this workspace has the same shape: N
//! independent simulations (one per seed), each fully deterministic, whose
//! results are merged in seed order. The simulations share *nothing* — each
//! builds its own topology, RNG streams, and handler state from its seed —
//! so fanning them across cores is observably free: [`map`] is required to
//! return exactly what the equivalent sequential loop would (asserted by
//! `tests/tests/engine_equivalence.rs`).
//!
//! Zero external dependencies, per the workspace policy: the fan-out runs
//! on the shared scoped pool ([`sds_registry::pool`] — extracted from this
//! module so the registry data plane can use the same mechanism inside a
//! node handler), `std::thread::scope` workers pulling indices off one
//! atomic cursor, writing each result into its own slot. Results come back
//! in *input* order regardless of completion order, so downstream
//! aggregation (tables, summaries, digests) is independent of scheduling.
//!
//! Worker count: `SDS_BENCH_THREADS` if set (must be a positive integer —
//! anything else aborts rather than silently benchmarking at the wrong
//! width), else [`std::thread::available_parallelism`]. A single-worker
//! fall-back runs the plain sequential loop on the calling thread — no
//! spawn, identical results, no thread overhead on single-core machines.
//!
//! ```
//! let squares = sds_bench::parallel::map(&[1u64, 2, 3], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! Panics in a worker propagate to the caller when the scope joins, so a
//! failing seed still fails the test or experiment that launched it.

/// The number of workers [`map`] fans out to: `SDS_BENCH_THREADS` when set,
/// else the machine's available parallelism, else 1.
///
/// # Panics
///
/// When `SDS_BENCH_THREADS` is set to anything other than a positive
/// integer. A typo'd override used to fall back silently, which meant a
/// benchmark believed it was pinned to N threads while actually running at
/// machine width — exactly the wrong failure mode for a perf-tracking
/// harness, so it is now a hard error.
pub fn workers() -> usize {
    match std::env::var("SDS_BENCH_THREADS") {
        Ok(raw) => match parse_threads(&raw) {
            Ok(n) => n,
            Err(why) => panic!("invalid SDS_BENCH_THREADS={raw:?}: {why}"),
        },
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Validates an `SDS_BENCH_THREADS` value: a positive integer (surrounding
/// whitespace tolerated). Delegates to the workspace-wide rules in
/// [`sds_registry::pool::parse_workers`], so every thread-count knob
/// (`SDS_BENCH_THREADS`, `SDS_REGISTRY_WORKERS`) rejects the same garbage.
fn parse_threads(raw: &str) -> Result<usize, String> {
    sds_registry::pool::parse_workers(raw)
}

/// Applies `f` to every item, fanning across up to [`workers`] threads, and
/// returns the results in input order. `f` receives `(index, &item)` — the
/// index lets callers label per-seed work without threading it through the
/// item type.
///
/// Guarantee: for a pure `f` (a function of its arguments only), the result
/// is identical to `items.iter().enumerate().map(...).collect()` — the
/// driver adds no observable nondeterminism, only wall-clock parallelism.
pub fn map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    map_with_workers(workers(), items, f)
}

/// [`map`] with an explicit worker count, for callers (and the equivalence
/// tests) that need to pin the fan-out regardless of the machine or the
/// `SDS_BENCH_THREADS` override. `workers <= 1` runs the plain sequential
/// loop on the calling thread.
pub fn map_with_workers<I, T, F>(workers: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    sds_registry::pool::map_indexed(workers, items.len(), |i| f(i, &items[i]))
}

/// [`map`] over the seed range `0..n` — the common "run this experiment
/// under n seeds" driver.
pub fn map_seeds<T, F>(n: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = (0..n).collect();
    map(&seeds, |_, &seed| f(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(map(&empty, |_, &x: &u64| x).is_empty());
        assert_eq!(map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn map_equals_sequential_for_stateful_per_item_work() {
        // Each item runs its own little deterministic state machine; the
        // parallel result must match the sequential loop exactly.
        let work = |seed: u64| -> u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..1_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
            }
            state
        };
        let seeds: Vec<u64> = (0..32).collect();
        let parallel = map(&seeds, |_, &s| work(s));
        let sequential: Vec<u64> = seeds.iter().map(|&s| work(s)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_seeds_covers_the_range_in_order() {
        assert_eq!(map_seeds(4, |s| s * 10), vec![0, 10, 20, 30]);
    }

    #[test]
    fn workers_is_positive() {
        assert!(workers() >= 1);
    }

    #[test]
    fn thread_override_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
        assert_eq!(parse_threads("  4 "), Ok(4), "surrounding whitespace tolerated");
    }

    #[test]
    fn thread_override_rejects_zero_and_garbage() {
        for bad in ["0", "", "  ", "four", "-2", "1.5", "2x", "0x4"] {
            let got = parse_threads(bad);
            assert!(got.is_err(), "{bad:?} must be rejected, got {got:?}");
        }
    }

    #[test]
    fn pinned_worker_counts_agree_with_sequential() {
        // Exercises the threaded path even on a single-core machine, and
        // odd worker/item ratios (more workers than items, prime counts).
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = map_with_workers(workers, &items, |_, &x| x.wrapping_mul(x) ^ 0xA5);
            assert_eq!(got, expected, "workers={workers}");
        }
    }
}
