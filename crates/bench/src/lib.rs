//! # sds-bench — experiment harness
//!
//! One runnable binary per experiment (E1–E12), each regenerating the table
//! recorded in `EXPERIMENTS.md`. This library holds what they share: a
//! fixed-width table printer and a query-phase driver that issues workload
//! queries one at a time, measuring recall, staleness, response counts, and
//! first-response latency against the ground-truth oracle.

pub mod harness;
pub mod parallel;

use sds_core::{ClientNode, QueryOptions};
use sds_metrics::{ratio, recall, Summary};
use sds_simnet::NodeId;
use sds_workload::Scenario;

/// A fixed-width text table, the output format of every experiment binary.
#[derive(Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width matches header");
        self.rows.push(cells.to_vec());
    }

    /// Renders with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n{}", self.render());
    }
}

/// Formats a float with 2 decimals (table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats bytes as KiB with one decimal.
pub fn kib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Aggregate result of a query phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    pub queries: usize,
    /// Mean recall vs the ground truth at issue time.
    pub recall_mean: f64,
    /// Fraction of returned hits whose provider was already dead when the
    /// query was issued (registry staleness, excluding mid-query churn).
    pub stale_fraction: f64,
    /// Fraction of queries that returned at least one hit while at least
    /// one was expected.
    pub success_rate: f64,
    /// QueryResponse messages per query (implosion metric).
    pub responses: Summary,
    /// First-response latency (ms) over answered queries.
    pub first_response_ms: Summary,
    /// Hits returned per query.
    pub hits: Summary,
}

/// Issues `n` workload queries round-robin over clients and query payloads,
/// one per `spacing` ms (spacing ≥ the query timeout makes ground truth and
/// staleness exact), then reports aggregates.
pub fn run_query_phase(s: &mut Scenario, n: usize, spacing: u64, options: QueryOptions) -> PhaseReport {
    assert!(spacing > options.timeout, "spacing must let each query complete");
    let mut recalls = Vec::new();
    let mut responses = Vec::new();
    let mut first_ms = Vec::new();
    let mut hit_counts = Vec::new();
    let mut stale_hits = 0u64;
    let mut total_hits = 0u64;
    let mut successes = 0u64;
    let mut answerable = 0u64;

    for qi in 0..n {
        let ci = qi % s.clients.len();
        let payload = s.queries[qi % s.queries.len()].clone();
        let expected = s.expected_now(&payload);
        // Providers already dead when the query is issued: hits pointing at
        // them are stale registry state, not mid-query churn noise.
        let dead_at_issue: Vec<NodeId> = s
            .services
            .iter()
            .map(|(n, _)| *n)
            .filter(|&n| !s.sim.is_alive(n))
            .collect();
        let client = s.clients[ci];
        let before = s.sim.handler::<ClientNode>(client).unwrap().completed.len();
        s.issue(ci, qi, options.clone());
        let deadline = s.sim.now() + spacing;
        s.sim.run_until(deadline);

        let sim = &s.sim;
        let done = &sim.handler::<ClientNode>(client).unwrap().completed;
        let q = done.get(before).expect("query completed within spacing");
        let got: Vec<NodeId> = q.hits.iter().map(|h| h.advert.provider).collect();
        recalls.push(recall(&expected, &got));
        responses.push(u64::from(q.responses_received));
        if let Some(t) = q.first_response_at {
            first_ms.push((t - q.sent_at) as f64);
        }
        hit_counts.push(q.hits.len() as u64);
        total_hits += q.hits.len() as u64;
        stale_hits +=
            q.hits.iter().filter(|h| dead_at_issue.contains(&h.advert.provider)).count() as u64;
        if !expected.is_empty() {
            answerable += 1;
            if got.iter().any(|p| expected.contains(p)) {
                successes += 1;
            }
        }
    }

    PhaseReport {
        queries: n,
        recall_mean: if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        },
        stale_fraction: ratio(stale_hits, total_hits),
        success_rate: ratio(successes, answerable),
        responses: Summary::of_counts(responses),
        first_response_ms: Summary::of(&first_ms),
        hits: Summary::of_counts(hit_counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::ModelId;
    use sds_simnet::secs;
    use sds_workload::{Deployment, PopulationSpec, ScenarioConfig};

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn query_phase_produces_sane_aggregates() {
        let mut s = Scenario::build(ScenarioConfig {
            lans: 2,
            population: PopulationSpec {
                model: ModelId::Semantic,
                services: 10,
                queries: 8,
                generalization_rate: 0.5,
                seed: 5,
            },
            seed: 5,
            deployment: Deployment::Federated { registries_per_lan: 1 },
            ..Default::default()
        });
        s.sim.run_until(secs(3));
        let report = run_query_phase(&mut s, 6, secs(4), QueryOptions::default());
        assert_eq!(report.queries, 6);
        assert!(report.recall_mean > 0.9, "federated recall high: {report:?}");
        assert_eq!(report.stale_fraction, 0.0, "no churn → no staleness");
        assert!(report.first_response_ms.n > 0);
    }
}
