//! Microbenchmarks for the hot paths of the discovery stack:
//! subsumption-closure construction, matchmaking, triple-store operations,
//! registry evaluation, wire codec, and raw simulator event throughput.
//! Runs under the in-workspace wall-clock harness (`sds_bench::harness`);
//! filter with `cargo bench -- <substring>`, smoke-run with
//! `SDS_BENCH_QUICK=1`.

use std::sync::Arc;

use sds_bench::harness::{black_box, Harness};

use sds_protocol::{
    codec, Advertisement, Description, DiscoveryMessage, ModelId, PublishOp, QueryId,
    QueryMessage, Uuid,
};
use sds_registry::{
    LeasePolicy, RegistryEngine, RegistryStore, SemanticEvaluator, TemplateEvaluator, UriEvaluator,
};
use sds_semantic::{
    Interner, Matchmaker, ServiceRequest, SubsumptionIndex, Triple, TriplePattern, TripleStore,
};
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, Sim, SimConfig, Topology};
use sds_workload::{battlefield, parametric, PopulationSpec, Workload};

fn bench_subsumption(h: &mut Harness) {
    let mut g = h.group("subsumption");
    for (roots, branching, depth) in [(2usize, 3usize, 4usize), (4, 4, 5)] {
        let ont = parametric(roots, branching, depth);
        g.bench(&format!("closure_build/{}classes", ont.len()), |b| {
            b.iter(|| SubsumptionIndex::build(black_box(&ont)))
        });
        let idx = SubsumptionIndex::build(&ont);
        let classes: Vec<_> = ont.classes().collect();
        let mut i = 0usize;
        g.bench(&format!("is_subclass/{}classes", ont.len()), |b| {
            b.iter(|| {
                i = (i + 1) % classes.len();
                black_box(idx.is_subclass(classes[i], classes[i / 2]))
            })
        });
    }
}

fn bench_matchmaker(h: &mut Harness) {
    let (ont, classes) = battlefield();
    let idx = SubsumptionIndex::build(&ont);
    let mm = Matchmaker::new(&idx);
    let mut g = h.group("matchmaker");
    for n in [100usize, 1_000] {
        let w = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec {
                model: ModelId::Semantic,
                services: n,
                queries: 1,
                generalization_rate: 0.5,
                seed: 1,
            },
        );
        let profiles: Vec<_> = w
            .descriptions
            .iter()
            .map(|d| match d {
                Description::Semantic(p) => p.clone(),
                _ => unreachable!(),
            })
            .collect();
        let request = ServiceRequest::for_category(classes.surveillance)
            .with_provided_inputs(&[classes.area_of_interest, classes.unit_id]);
        g.bench(&format!("rank/{n}"), |b| {
            b.iter(|| mm.rank(black_box(&request), black_box(&profiles), Some(10)))
        });
    }
}

fn bench_triple_store(h: &mut Harness) {
    let mut g = h.group("triple_store");
    g.bench("insert_10k", |b| {
        b.iter(|| {
            let mut interner = Interner::new();
            let mut store = TripleStore::new();
            for i in 0..10_000u32 {
                let s = interner.intern(&format!("s{}", i % 500));
                let p = interner.intern(&format!("p{}", i % 7));
                let o = interner.intern(&format!("o{i}"));
                store.insert(Triple::new(s, p, o));
            }
            black_box(store.len())
        })
    });

    let mut interner = Interner::new();
    let mut store = TripleStore::new();
    for i in 0..10_000u32 {
        let s = interner.intern(&format!("s{}", i % 500));
        let p = interner.intern(&format!("p{}", i % 7));
        let o = interner.intern(&format!("o{i}"));
        store.insert(Triple::new(s, p, o));
    }
    let s0 = interner.get("s0").unwrap();
    let p0 = interner.get("p0").unwrap();
    g.bench("query_by_subject", |b| {
        b.iter(|| black_box(store.query(TriplePattern::any().with_s(s0)).count()))
    });
    g.bench("query_by_predicate", |b| {
        b.iter(|| black_box(store.query(TriplePattern::any().with_p(p0)).count()))
    });
}

fn bench_registry_evaluate(h: &mut Harness) {
    let (ont, classes) = battlefield();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let mut g = h.group("registry_evaluate");
    for model in [ModelId::Uri, ModelId::Semantic] {
        let w = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec { model, services: 1_000, queries: 16, generalization_rate: 0.5, seed: 2 },
        );
        let mut engine = RegistryEngine::new(LeasePolicy::default());
        engine.register_evaluator(Box::new(UriEvaluator));
        engine.register_evaluator(Box::new(TemplateEvaluator));
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
        for (i, d) in w.descriptions.iter().enumerate() {
            let advert = Advertisement {
                id: Uuid(i as u128 + 1),
                provider: NodeId(0),
                description: d.clone(),
                version: 1,
            };
            engine.publish(advert, NodeId(0), 0, 1_000_000);
        }
        let queries: Vec<QueryMessage> = w
            .queries
            .iter()
            .enumerate()
            .map(|(i, p)| QueryMessage {
                id: QueryId { origin: NodeId(1), seq: i as u64 },
                payload: p.clone(),
                max_responses: Some(10),
                ttl: 0,
                reply_to: None,
            })
            .collect();
        let mut i = 0usize;
        g.bench(&format!("evaluate_1k_store/{model:?}"), |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(engine.evaluate(&queries[i], 100))
            })
        });
        let mut j = 0usize;
        g.bench(&format!("naive_evaluate_1k_store/{model:?}"), |b| {
            b.iter(|| {
                j = (j + 1) % queries.len();
                black_box(engine.naive_evaluate(&queries[j], 100))
            })
        });
    }
}

/// The incremental cost of the secondary indexes and the expiry heap:
/// publish/remove churn, lease-driven purge, and raw candidate generation.
fn bench_registry_index(h: &mut Harness) {
    let (ont, classes) = battlefield();
    let idx = SubsumptionIndex::build(&ont);
    let w = Workload::generate(
        &ont,
        &classes,
        &PopulationSpec {
            model: ModelId::Semantic,
            services: 1_000,
            queries: 0,
            generalization_rate: 0.5,
            seed: 4,
        },
    );
    let adverts: Vec<Advertisement> = w
        .descriptions
        .iter()
        .enumerate()
        .map(|(i, d)| Advertisement {
            id: Uuid(i as u128 + 1),
            provider: NodeId(0),
            description: d.clone(),
            version: 1,
        })
        .collect();

    let mut g = h.group("registry_index");
    g.bench("publish_remove_churn_1k", |b| {
        b.iter(|| {
            let mut store = RegistryStore::new();
            for a in &adverts {
                store.publish(a.clone(), NodeId(0), 0, 1_000, 0);
            }
            for a in &adverts {
                store.remove(a.id);
            }
            black_box(store.len())
        })
    });
    g.bench("publish_expire_purge_1k", |b| {
        b.iter(|| {
            let mut store = RegistryStore::new();
            for (i, a) in adverts.iter().enumerate() {
                store.publish(a.clone(), NodeId(0), 0, (i as u64 % 100) + 1, 0);
            }
            black_box(store.purge_expired(50).len())
        })
    });

    let mut store = RegistryStore::new();
    for a in &adverts {
        store.publish(a.clone(), NodeId(0), 0, u64::MAX, 0);
    }
    let payload =
        sds_protocol::QueryPayload::Semantic(ServiceRequest::for_category(classes.surveillance));
    g.bench("candidates_semantic_1k", |b| {
        b.iter(|| black_box(store.candidates(&payload, Some(&idx)).len()))
    });
}

fn bench_codec(h: &mut Harness) {
    let (ont, classes) = battlefield();
    let w = Workload::generate(
        &ont,
        &classes,
        &PopulationSpec {
            model: ModelId::Semantic,
            services: 1,
            queries: 0,
            generalization_rate: 0.0,
            seed: 3,
        },
    );
    let msg = DiscoveryMessage::publishing(PublishOp::Publish {
        advert: Advertisement {
            id: Uuid(7),
            provider: NodeId(3),
            description: w.descriptions[0].clone(),
            version: 1,
        },
        lease_ms: 30_000,
    });
    let bytes = codec::encode(&msg);
    let mut g = h.group("codec");
    g.bench("encode_publish", |b| b.iter(|| black_box(codec::encode(black_box(&msg)))));
    g.bench("decode_publish", |b| {
        b.iter(|| black_box(codec::decode(black_box(&bytes)).unwrap()))
    });
}

struct PingPong {
    peer: NodeId,
    remaining: u32,
}

impl NodeHandler<u32> for PingPong {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(Destination::Unicast(self.peer), msg + 1, 16, "ping");
        }
    }
}

fn bench_simnet(h: &mut Harness) {
    let mut g = h.group("simnet");
    g.bench("100k_events", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let lan = topo.add_lan();
            let mut sim: Sim<u32> = Sim::new(SimConfig::default(), topo, 1);
            let a = sim.add_node(lan, Box::new(PingPong { peer: NodeId(1), remaining: 50_000 }));
            let bn = sim.add_node(lan, Box::new(PingPong { peer: NodeId(0), remaining: 50_000 }));
            sim.with_node::<PingPong>(a, |_, ctx| {
                ctx.send(Destination::Unicast(bn), 0, 16, "ping");
            });
            sim.run_until(u64::MAX / 2);
            black_box(sim.stats().total_messages())
        })
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_subsumption(&mut h);
    bench_matchmaker(&mut h);
    bench_triple_store(&mut h);
    bench_registry_evaluate(&mut h);
    bench_registry_index(&mut h);
    bench_codec(&mut h);
    bench_simnet(&mut h);
    h.finish();
}
