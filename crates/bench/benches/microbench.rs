//! Criterion microbenchmarks for the hot paths of the discovery stack:
//! subsumption-closure construction, matchmaking, triple-store operations,
//! registry evaluation, wire codec, and raw simulator event throughput.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sds_protocol::{
    codec, Advertisement, Description, DiscoveryMessage, ModelId, PublishOp, QueryId,
    QueryMessage, Uuid,
};
use sds_registry::{LeasePolicy, RegistryEngine, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::{
    Interner, Matchmaker, ServiceRequest, SubsumptionIndex, Triple, TriplePattern, TripleStore,
};
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, Sim, SimConfig, Topology};
use sds_workload::{battlefield, parametric, PopulationSpec, Workload};

fn bench_subsumption(c: &mut Criterion) {
    let mut g = c.benchmark_group("subsumption");
    for (roots, branching, depth) in [(2usize, 3usize, 4usize), (4, 4, 5)] {
        let ont = parametric(roots, branching, depth);
        g.bench_with_input(
            BenchmarkId::new("closure_build", format!("{}classes", ont.len())),
            &ont,
            |b, ont| b.iter(|| SubsumptionIndex::build(black_box(ont))),
        );
        let idx = SubsumptionIndex::build(&ont);
        let classes: Vec<_> = ont.classes().collect();
        g.bench_with_input(
            BenchmarkId::new("is_subclass", format!("{}classes", ont.len())),
            &idx,
            |b, idx| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % classes.len();
                    black_box(idx.is_subclass(classes[i], classes[i / 2]))
                })
            },
        );
    }
    g.finish();
}

fn bench_matchmaker(c: &mut Criterion) {
    let (ont, classes) = battlefield();
    let idx = SubsumptionIndex::build(&ont);
    let mm = Matchmaker::new(&idx);
    let mut g = c.benchmark_group("matchmaker");
    for n in [100usize, 1_000] {
        let w = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec {
                model: ModelId::Semantic,
                services: n,
                queries: 1,
                generalization_rate: 0.5,
                seed: 1,
            },
        );
        let profiles: Vec<_> = w
            .descriptions
            .iter()
            .map(|d| match d {
                Description::Semantic(p) => p.clone(),
                _ => unreachable!(),
            })
            .collect();
        let request = ServiceRequest::for_category(classes.surveillance)
            .with_provided_inputs(&[classes.area_of_interest, classes.unit_id]);
        g.bench_with_input(BenchmarkId::new("rank", n), &profiles, |b, profiles| {
            b.iter(|| mm.rank(black_box(&request), black_box(profiles), Some(10)))
        });
    }
    g.finish();
}

fn bench_triple_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("triple_store");
    g.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut interner = Interner::new();
            let mut store = TripleStore::new();
            for i in 0..10_000u32 {
                let s = interner.intern(&format!("s{}", i % 500));
                let p = interner.intern(&format!("p{}", i % 7));
                let o = interner.intern(&format!("o{i}"));
                store.insert(Triple::new(s, p, o));
            }
            black_box(store.len())
        })
    });

    let mut interner = Interner::new();
    let mut store = TripleStore::new();
    for i in 0..10_000u32 {
        let s = interner.intern(&format!("s{}", i % 500));
        let p = interner.intern(&format!("p{}", i % 7));
        let o = interner.intern(&format!("o{i}"));
        store.insert(Triple::new(s, p, o));
    }
    let s0 = interner.get("s0").unwrap();
    let p0 = interner.get("p0").unwrap();
    g.bench_function("query_by_subject", |b| {
        b.iter(|| black_box(store.query(TriplePattern::any().with_s(s0)).count()))
    });
    g.bench_function("query_by_predicate", |b| {
        b.iter(|| black_box(store.query(TriplePattern::any().with_p(p0)).count()))
    });
    g.finish();
}

fn bench_registry_evaluate(c: &mut Criterion) {
    let (ont, classes) = battlefield();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let mut g = c.benchmark_group("registry_evaluate");
    for model in [ModelId::Uri, ModelId::Semantic] {
        let w = Workload::generate(
            &ont,
            &classes,
            &PopulationSpec { model, services: 1_000, queries: 16, generalization_rate: 0.5, seed: 2 },
        );
        let mut engine = RegistryEngine::new(LeasePolicy::default());
        engine.register_evaluator(Box::new(UriEvaluator));
        engine.register_evaluator(Box::new(TemplateEvaluator));
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
        for (i, d) in w.descriptions.iter().enumerate() {
            let advert = Advertisement {
                id: Uuid(i as u128 + 1),
                provider: NodeId(0),
                description: d.clone(),
                version: 1,
            };
            engine.publish(advert, NodeId(0), 0, 1_000_000);
        }
        let queries: Vec<QueryMessage> = w
            .queries
            .iter()
            .enumerate()
            .map(|(i, p)| QueryMessage {
                id: QueryId { origin: NodeId(1), seq: i as u64 },
                payload: p.clone(),
                max_responses: Some(10),
                ttl: 0,
                reply_to: None,
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("evaluate_1k_store", format!("{model:?}")),
            &queries,
            |b, queries| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    black_box(engine.evaluate(&queries[i], 100))
                })
            },
        );
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let (ont, classes) = battlefield();
    let w = Workload::generate(
        &ont,
        &classes,
        &PopulationSpec {
            model: ModelId::Semantic,
            services: 1,
            queries: 0,
            generalization_rate: 0.0,
            seed: 3,
        },
    );
    let msg = DiscoveryMessage::publishing(PublishOp::Publish {
        advert: Advertisement {
            id: Uuid(7),
            provider: NodeId(3),
            description: w.descriptions[0].clone(),
            version: 1,
        },
        lease_ms: 30_000,
    });
    let bytes = codec::encode(&msg);
    let mut g = c.benchmark_group("codec");
    g.bench_function("encode_publish", |b| b.iter(|| black_box(codec::encode(black_box(&msg)))));
    g.bench_function("decode_publish", |b| {
        b.iter(|| black_box(codec::decode(black_box(&bytes)).unwrap()))
    });
    g.finish();
}

struct PingPong {
    peer: NodeId,
    remaining: u32,
}

impl NodeHandler<u32> for PingPong {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(Destination::Unicast(self.peer), msg + 1, 16, "ping");
        }
    }
}

fn bench_simnet(c: &mut Criterion) {
    c.bench_function("simnet_100k_events", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let lan = topo.add_lan();
            let mut sim: Sim<u32> = Sim::new(SimConfig::default(), topo, 1);
            let a = sim.add_node(lan, Box::new(PingPong { peer: NodeId(1), remaining: 50_000 }));
            let bn = sim.add_node(lan, Box::new(PingPong { peer: NodeId(0), remaining: 50_000 }));
            sim.with_node::<PingPong>(a, |_, ctx| {
                ctx.send(Destination::Unicast(bn), 0, 16, "ping");
            });
            sim.run_until(u64::MAX / 2);
            black_box(sim.stats().total_messages())
        })
    });
}

criterion_group!(
    benches,
    bench_subsumption,
    bench_matchmaker,
    bench_triple_store,
    bench_registry_evaluate,
    bench_codec,
    bench_simnet
);
criterion_main!(benches);
