//! Cross-crate property tests: the ground-truth oracle, the registry
//! engine, and a provider's fallback self-evaluation must agree on what
//! matches — they are three code paths over one matching semantics. Run
//! under the in-workspace seeded harness (`sds_rand::check`).

use std::sync::Arc;

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_protocol::{Advertisement, Description, DescriptionTemplate, QueryId, QueryMessage, QueryPayload, Uuid};
use sds_registry::{LeasePolicy, RegistryEngine, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;
use sds_workload::Oracle;

fn taxonomy() -> (Ontology, u32) {
    // Depth-3 taxonomy with 10 classes: room for every degree of match.
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);
    let a = o.class("A", &[thing]);
    let a1 = o.class("A1", &[a]);
    let a2 = o.class("A2", &[a]);
    let _a11 = o.class("A11", &[a1]);
    let b = o.class("B", &[thing]);
    let b1 = o.class("B1", &[b]);
    let _b11 = o.class("B11", &[b1]);
    let c = o.class("C", &[thing]);
    let _c1 = o.class("C1", &[c]);
    let _ = a2;
    let n = o.len();
    assert_eq!(n, 10, "generators below assume 10 classes");
    (o, n as u32)
}

fn arb_class(rng: &mut Rng, n: u32) -> ClassId {
    ClassId(rng.gen_range(0..n))
}

fn arb_profile(rng: &mut Rng, n: u32) -> ServiceProfile {
    ServiceProfile::new("p", arb_class(rng, n))
        .with_inputs(&gen::vec_of(rng, 0, 3, |r| arb_class(r, n)))
        .with_outputs(&gen::vec_of(rng, 0, 3, |r| arb_class(r, n)))
}

fn arb_request(rng: &mut Rng, n: u32) -> ServiceRequest {
    ServiceRequest {
        category: gen::option_of(rng, |r| arb_class(r, n)),
        outputs: gen::vec_of(rng, 0, 3, |r| arb_class(r, n)),
        provided_inputs: gen::vec_of(rng, 0, 3, |r| arb_class(r, n)),
        qos: Vec::new(),
    }
}

fn arb_description(rng: &mut Rng, n: u32) -> Description {
    match rng.gen_range(0..3u32) {
        0 => Description::Uri(format!("urn:svc:{}", rng.gen_range(0..6u32))),
        1 => Description::Template(DescriptionTemplate {
            name: None,
            type_uri: Some(format!("urn:svc:{}", rng.gen_range(0..6u32))),
            attrs: vec![],
        }),
        _ => Description::Semantic(arb_profile(rng, n)),
    }
}

fn arb_payload(rng: &mut Rng, n: u32) -> QueryPayload {
    match rng.gen_range(0..3u32) {
        0 => QueryPayload::Uri(format!("urn:svc:{}", rng.gen_range(0..6u32))),
        1 => QueryPayload::Template(DescriptionTemplate {
            name: None,
            type_uri: Some(format!("urn:svc:{}", rng.gen_range(0..6u32))),
            attrs: vec![],
        }),
        _ => QueryPayload::Semantic(arb_request(rng, n)),
    }
}

/// Builds the engine, publishes `descriptions`, and returns sorted provider
/// hit lists from both the engine and the oracle for `payload`.
fn engine_vs_oracle(descriptions: &[Description], payload: &QueryPayload) -> (Vec<NodeId>, Vec<NodeId>) {
    let (ont, _) = taxonomy();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let oracle = Oracle::new(idx.clone());

    let mut engine = RegistryEngine::new(LeasePolicy::default());
    engine.register_evaluator(Box::new(UriEvaluator));
    engine.register_evaluator(Box::new(TemplateEvaluator));
    engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));

    let services: Vec<(NodeId, Description)> = descriptions
        .iter()
        .enumerate()
        .map(|(i, d)| (NodeId(i as u32 + 100), d.clone()))
        .collect();
    for (i, (node, d)) in services.iter().enumerate() {
        let advert = Advertisement {
            id: Uuid(i as u128 + 1),
            provider: *node,
            description: d.clone(),
            version: 1,
        };
        engine.publish(advert, *node, 0, 1_000_000);
    }

    let query = QueryMessage {
        id: QueryId { origin: NodeId(0), seq: 0 },
        payload: payload.clone(),
        max_responses: None,
        ttl: 0,
        reply_to: None,
    };
    let mut engine_hits: Vec<NodeId> =
        engine.evaluate(&query, 100).iter().map(|h| h.advert.provider).collect();
    let mut oracle_hits = oracle.expected_providers(payload, &services, |_| true);
    engine_hits.sort();
    oracle_hits.sort();
    (engine_hits, oracle_hits)
}

#[test]
fn oracle_and_registry_engine_agree() {
    Checker::new("oracle_and_registry_engine_agree").run(|rng| {
        let n = taxonomy().1;
        let descriptions = gen::vec_of(rng, 1, 12, |r| arb_description(r, n));
        let payload = arb_payload(rng, n);
        let (engine_hits, oracle_hits) = engine_vs_oracle(&descriptions, &payload);
        assert_eq!(engine_hits, oracle_hits);
    });
}

/// The shrunken case preserved from `properties_cross.proptest-regressions`:
/// a semantic profile whose input concept (ClassId(10)) lies OUTSIDE the
/// 10-class taxonomy, queried with a request providing only ClassId(0). The
/// engine and the oracle must agree on how an out-of-ontology input fails to
/// be covered.
#[test]
fn regression_profile_with_out_of_taxonomy_input() {
    let descriptions = vec![Description::Semantic(ServiceProfile {
        name: "p".into(),
        category: ClassId(0),
        inputs: vec![ClassId(10)],
        outputs: vec![],
        qos: vec![],
    })];
    let payload = QueryPayload::Semantic(ServiceRequest {
        category: None,
        outputs: vec![],
        provided_inputs: vec![ClassId(0)],
        qos: vec![],
    });
    let (engine_hits, oracle_hits) = engine_vs_oracle(&descriptions, &payload);
    assert_eq!(engine_hits, oracle_hits);
}

#[test]
fn response_control_returns_a_prefix_of_the_unlimited_ranking() {
    Checker::new("response_control_returns_a_prefix_of_the_unlimited_ranking").run(|rng| {
        let n = taxonomy().1;
        let descriptions = gen::vec_of(rng, 1, 12, |r| arb_description(r, n));
        let payload = arb_payload(rng, n);
        let k = rng.gen_range(0..8u16);
        let (ont, _) = taxonomy();
        let idx = Arc::new(SubsumptionIndex::build(&ont));
        let mut engine = RegistryEngine::new(LeasePolicy::default());
        engine.register_evaluator(Box::new(UriEvaluator));
        engine.register_evaluator(Box::new(TemplateEvaluator));
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));
        for (i, d) in descriptions.iter().enumerate() {
            let advert = Advertisement {
                id: Uuid(i as u128 + 1),
                provider: NodeId(i as u32),
                description: d.clone(),
                version: 1,
            };
            engine.publish(advert, NodeId(i as u32), 0, 1_000_000);
        }
        let mk = |max| QueryMessage {
            id: QueryId { origin: NodeId(0), seq: 0 },
            payload: payload.clone(),
            max_responses: max,
            ttl: 0,
            reply_to: None,
        };
        let unlimited = engine.evaluate(&mk(None), 100);
        let limited = engine.evaluate(&mk(Some(k)), 100);
        assert_eq!(limited.len(), unlimited.len().min(k as usize));
        for (l, u) in limited.iter().zip(unlimited.iter()) {
            assert_eq!(&l.advert.id, &u.advert.id, "truncation preserves ranking order");
        }
    });
}

/// A compact message generator spanning all three op families — enough
/// surface for the fuzz property below to reach every handler arm.
fn arb_wire_message(rng: &mut Rng, n: u32) -> sds_protocol::DiscoveryMessage {
    use sds_protocol::{DiscoveryMessage, MaintenanceOp, PublishOp, QueryOp, ResponseHit, SyncEntry};
    use sds_semantic::Degree;
    let advert = |rng: &mut Rng| Advertisement {
        id: Uuid(rng.gen_u128()),
        provider: NodeId(rng.gen_range(0..10u32)),
        description: arb_description(rng, n),
        version: rng.next_u32(),
    };
    let qid = |rng: &mut Rng| QueryId {
        origin: NodeId(rng.gen_range(0..10u32)),
        seq: rng.next_u64(),
    };
    match rng.gen_range(0..17u32) {
        0 => DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbe),
        1 => DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbeReply {
            advert_count: rng.next_u32(),
            load: rng.next_u32(),
        }),
        2 => DiscoveryMessage::maintenance(MaintenanceOp::Pong),
        3 => DiscoveryMessage::maintenance(MaintenanceOp::RegistryList {
            registries: gen::vec_of(rng, 0, 4, |r| NodeId(r.gen_range(0..10u32))),
        }),
        4 => DiscoveryMessage::maintenance(MaintenanceOp::FederationJoin {
            known_peers: gen::vec_of(rng, 0, 4, |r| NodeId(r.gen_range(0..10u32))),
        }),
        5 => DiscoveryMessage::publishing(PublishOp::Publish {
            advert: advert(rng),
            lease_ms: rng.next_u64(),
        }),
        6 => DiscoveryMessage::publishing(PublishOp::PublishAck {
            id: Uuid(rng.gen_u128()),
            lease_until: rng.next_u64(),
        }),
        7 => DiscoveryMessage::publishing(PublishOp::RenewAck {
            id: Uuid(rng.gen_u128()),
            lease_until: rng.next_u64(),
            known: rng.gen_bool(0.5),
        }),
        8 => DiscoveryMessage::querying(QueryOp::Query(QueryMessage {
            id: qid(rng),
            payload: arb_payload(rng, n),
            max_responses: gen::option_of(rng, |r| r.next_u64() as u16),
            ttl: rng.gen_range(0..=8u8),
            reply_to: gen::option_of(rng, |r| NodeId(r.gen_range(0..10u32))),
        })),
        9 => DiscoveryMessage::querying(QueryOp::QueryResponse {
            query_id: qid(rng),
            hits: gen::vec_of(rng, 0, 3, |r| ResponseHit {
                advert: advert(r),
                degree: Degree::Exact,
                distance: r.next_u32(),
            }),
            responder: NodeId(rng.gen_range(0..10u32)),
        }),
        10 => DiscoveryMessage::querying(QueryOp::Subscribe {
            id: qid(rng),
            payload: arb_payload(rng, n),
            lease_ms: rng.next_u64(),
        }),
        11 => DiscoveryMessage::querying(QueryOp::Notify {
            subscription: qid(rng),
            hit: ResponseHit { advert: advert(rng), degree: Degree::PlugIn, distance: 0 },
        }),
        // Anti-entropy ops. `count` deliberately decouples from the bucket
        // vector length so shape-skewed digests reach the comparison arm.
        12 => DiscoveryMessage::maintenance(MaintenanceOp::SyncDigest {
            count: rng.gen_range(0..20u32),
            buckets: gen::vec_of(rng, 0, 20, |r| r.next_u64()),
        }),
        13 => DiscoveryMessage::maintenance(MaintenanceOp::SyncDelta {
            buckets: gen::vec_of(rng, 0, 6, |r| r.next_u64() as u16),
            entries: gen::vec_of(rng, 0, 4, |r| {
                if r.gen_bool(0.5) {
                    SyncEntry::Full { advert: advert(r), lease_until: r.next_u64() }
                } else {
                    // Version-skewed delta: a renewal for an (id, version)
                    // pair the receiver almost certainly never stored.
                    SyncEntry::Delta {
                        id: Uuid(r.gen_u128()),
                        version: r.next_u32(),
                        lease_until: r.next_u64(),
                    }
                }
            }),
        }),
        14 => DiscoveryMessage::maintenance(MaintenanceOp::SyncAck {
            missing: gen::vec_of(rng, 0, 4, |r| Uuid(r.gen_u128())),
        }),
        // Overload ops: backpressure nacks (with absurd retry hints) and
        // admission-deduplicated retries (with root sequences unrelated to
        // the carried query id).
        15 => DiscoveryMessage::maintenance(MaintenanceOp::Busy {
            retry_after_ms: rng.next_u64(),
        }),
        _ => DiscoveryMessage::querying(QueryOp::QueryRetry {
            query: QueryMessage {
                id: qid(rng),
                payload: arb_payload(rng, n),
                max_responses: gen::option_of(rng, |r| r.next_u64() as u16),
                ttl: rng.gen_range(0..=8u8),
                reply_to: gen::option_of(rng, |r| NodeId(r.gen_range(0..10u32))),
            },
            root_seq: rng.next_u64(),
        }),
    }
}

#[test]
fn handlers_survive_fuzzed_payload_frames() {
    // Field-aware corruption produces frames with a valid envelope whose
    // payload bytes are garbage — precisely the frames that get past the
    // outer decode checks and into role handlers. Every decodable mutant,
    // delivered to every role, must be handled without a panic (bogus ids,
    // absurd lease times, unknown peers, hits for queries never issued).
    use sds_core::{ClientConfig, ClientNode, RegistryConfig, RegistryNode, ServiceConfig, ServiceNode};
    use sds_protocol::codec;
    use sds_simnet::{NodeHandler, Sim, SimConfig, Topology};

    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<sds_protocol::DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 9);
    let registry =
        sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let service = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:0".into())],
            None,
        )),
    );
    let client = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(2_000);

    let peers = [registry, service, client];
    Checker::new("handlers_survive_fuzzed_payload_frames").cases(1024).run(|rng| {
        let n = taxonomy().1;
        let msg = arb_wire_message(rng, n);
        let bytes = codec::encode(&msg);
        let fuzzed = codec::fuzz_payload(rng, &bytes);
        let Ok(decoded) = codec::decode(&fuzzed) else {
            return; // rejected at the wire; the simulator would drop it
        };
        let from = peers[rng.gen_range(0..peers.len())];
        sim.with_node::<RegistryNode>(registry, |node, ctx| {
            NodeHandler::on_message(node, ctx, from, decoded.clone());
        });
        sim.with_node::<ServiceNode>(service, |node, ctx| {
            NodeHandler::on_message(node, ctx, from, decoded.clone());
        });
        sim.with_node::<ClientNode>(client, |node, ctx| {
            NodeHandler::on_message(node, ctx, from, decoded);
        });
    });
    // Drain everything the mutants provoked (replies, timers, forwards).
    let drain_until = sim.now() + 30_000;
    sim.run_until(drain_until);
}
