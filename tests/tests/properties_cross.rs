//! Cross-crate property tests: the ground-truth oracle, the registry
//! engine, and a provider's fallback self-evaluation must agree on what
//! matches — they are three code paths over one matching semantics.

use std::sync::Arc;

use proptest::prelude::*;

use sds_protocol::{Advertisement, Description, DescriptionTemplate, QueryId, QueryMessage, QueryPayload, Uuid};
use sds_registry::{LeasePolicy, RegistryEngine, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;
use sds_workload::Oracle;

fn taxonomy() -> (Ontology, usize) {
    // Depth-3 taxonomy with 10 classes: room for every degree of match.
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);
    let a = o.class("A", &[thing]);
    let a1 = o.class("A1", &[a]);
    let a2 = o.class("A2", &[a]);
    let _a11 = o.class("A11", &[a1]);
    let b = o.class("B", &[thing]);
    let b1 = o.class("B1", &[b]);
    let _b11 = o.class("B11", &[b1]);
    let c = o.class("C", &[thing]);
    let _c1 = o.class("C1", &[c]);
    let _ = a2;
    let n = o.len();
    assert_eq!(n, 10, "strategies below assume 10 classes");
    (o, n)
}

fn arb_class(n: usize) -> impl Strategy<Value = ClassId> {
    (0..n as u32).prop_map(ClassId)
}

fn arb_profile(n: usize) -> impl Strategy<Value = ServiceProfile> {
    (
        arb_class(n),
        prop::collection::vec(arb_class(n), 0..3),
        prop::collection::vec(arb_class(n), 0..3),
    )
        .prop_map(|(category, inputs, outputs)| {
            ServiceProfile::new("p", category).with_inputs(&inputs).with_outputs(&outputs)
        })
}

fn arb_request(n: usize) -> impl Strategy<Value = ServiceRequest> {
    (
        prop::option::of(arb_class(n)),
        prop::collection::vec(arb_class(n), 0..3),
        prop::collection::vec(arb_class(n), 0..3),
    )
        .prop_map(|(category, outputs, provided)| ServiceRequest {
            category,
            outputs,
            provided_inputs: provided,
            qos: Vec::new(),
        })
}

fn arb_description(n: usize) -> impl Strategy<Value = Description> {
    prop_oneof![
        (0u32..6).prop_map(|i| Description::Uri(format!("urn:svc:{i}"))),
        (0u32..6).prop_map(|i| Description::Template(DescriptionTemplate {
            name: None,
            type_uri: Some(format!("urn:svc:{i}")),
            attrs: vec![],
        })),
        arb_profile(n).prop_map(Description::Semantic),
    ]
}

fn arb_payload(n: usize) -> impl Strategy<Value = QueryPayload> {
    prop_oneof![
        (0u32..6).prop_map(|i| QueryPayload::Uri(format!("urn:svc:{i}"))),
        (0u32..6).prop_map(|i| QueryPayload::Template(DescriptionTemplate {
            name: None,
            type_uri: Some(format!("urn:svc:{i}")),
            attrs: vec![],
        })),
        arb_request(n).prop_map(QueryPayload::Semantic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn oracle_and_registry_engine_agree(
        descriptions in prop::collection::vec(arb_description(10), 1..12),
        payload in arb_payload(10),
    ) {
        let (ont, _) = taxonomy();
        let idx = Arc::new(SubsumptionIndex::build(&ont));
        let oracle = Oracle::new(idx.clone());

        let mut engine = RegistryEngine::new(LeasePolicy::default());
        engine.register_evaluator(Box::new(UriEvaluator));
        engine.register_evaluator(Box::new(TemplateEvaluator));
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));

        let services: Vec<(NodeId, Description)> = descriptions
            .iter()
            .enumerate()
            .map(|(i, d)| (NodeId(i as u32 + 100), d.clone()))
            .collect();
        for (i, (node, d)) in services.iter().enumerate() {
            let advert = Advertisement {
                id: Uuid(i as u128 + 1),
                provider: *node,
                description: d.clone(),
                version: 1,
            };
            engine.publish(advert, *node, 0, 1_000_000);
        }

        let query = QueryMessage {
            id: QueryId { origin: NodeId(0), seq: 0 },
            payload: payload.clone(),
            max_responses: None,
            ttl: 0,
            reply_to: None,
        };
        let mut engine_hits: Vec<NodeId> =
            engine.evaluate(&query, 100).iter().map(|h| h.advert.provider).collect();
        let mut oracle_hits = oracle.expected_providers(&payload, &services, |_| true);
        engine_hits.sort();
        oracle_hits.sort();
        prop_assert_eq!(engine_hits, oracle_hits);
    }

    #[test]
    fn response_control_returns_a_prefix_of_the_unlimited_ranking(
        descriptions in prop::collection::vec(arb_description(10), 1..12),
        payload in arb_payload(10),
        k in 0u16..8,
    ) {
        let (ont, _) = taxonomy();
        let idx = Arc::new(SubsumptionIndex::build(&ont));
        let mut engine = RegistryEngine::new(LeasePolicy::default());
        engine.register_evaluator(Box::new(UriEvaluator));
        engine.register_evaluator(Box::new(TemplateEvaluator));
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));
        for (i, d) in descriptions.iter().enumerate() {
            let advert = Advertisement {
                id: Uuid(i as u128 + 1),
                provider: NodeId(i as u32),
                description: d.clone(),
                version: 1,
            };
            engine.publish(advert, NodeId(i as u32), 0, 1_000_000);
        }
        let mk = |max| QueryMessage {
            id: QueryId { origin: NodeId(0), seq: 0 },
            payload: payload.clone(),
            max_responses: max,
            ttl: 0,
            reply_to: None,
        };
        let unlimited = engine.evaluate(&mk(None), 100);
        let limited = engine.evaluate(&mk(Some(k)), 100);
        prop_assert_eq!(limited.len(), unlimited.len().min(k as usize));
        for (l, u) in limited.iter().zip(unlimited.iter()) {
            prop_assert_eq!(&l.advert.id, &u.advert.id, "truncation preserves ranking order");
        }
    }
}
