//! Post-heal federation equivalence: after fault windows (message loss,
//! duplication, reordering) and a partial partition heal, every federated
//! registry's live store view must converge to the same (advert id →
//! version) map within a bounded number of anti-entropy rounds — no silent
//! divergence, no replica stuck at a stale version, no deleted advert
//! resurrected.
//!
//! The bound: one signaling-gossip interval (15 s, worst case for two
//! registries that evicted each other during the partition to rediscover
//! one another through the third) plus three sync intervals (10 s each:
//! digest → delta → ack/resend, with one round of slack) plus purge slack.

use std::collections::BTreeMap;

use sds_bench::parallel;
use sds_core::RegistryNode;
use sds_protocol::{ModelId, Uuid};
use sds_simnet::secs;
use sds_workload::{
    Deployment, FaultPlan, FaultSeverity, PopulationSpec, Scenario, ScenarioConfig,
};

/// Live (id → version) view of one registry's store.
fn view(s: &Scenario, r: sds_simnet::NodeId) -> BTreeMap<Uuid, u32> {
    let now = s.sim.now();
    let node = s.sim.handler::<RegistryNode>(r).unwrap();
    let store = node.engine().store();
    let v = store.live(now).map(|st| (st.advert.id, st.advert.version)).collect();
    v
}

fn check_convergence(seed: u64) {
    let mut cfg = ScenarioConfig {
        lans: 3,
        clients_per_lan: 1,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 8,
            queries: 4,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    };
    cfg.client.fallback_query = false;
    let mut s = Scenario::build(cfg);

    // Loss, duplication, and reordering windows over every LAN scope (no
    // corruption: there is no corruptor hook installed here, and the codec
    // fuzz property owns that surface). Applied from t=0: federation
    // formation and the first publishes happen under fire too.
    let severity = FaultSeverity { max_corrupt: 0.0, ..FaultSeverity::default() };
    let faults =
        FaultPlan::exponential(&s.lans, true, 8_000.0, 3_000.0, severity, secs(40), seed);
    faults.apply(&mut s.sim);

    // Partial partition on top: one WAN pair severed for 20 s while the
    // rest of the WAN stays connected. Rotate the pair by seed.
    let n = s.lans.len();
    let (a, b) = (s.lans[seed as usize % n], s.lans[(seed as usize + 1) % n]);
    s.sim.run_until(secs(10));
    s.sim.cut_wan_pair(a, b);
    s.sim.run_until(secs(30));
    s.sim.heal_wan_pair(a, b);

    // Everything heals; then the convergence bound starts.
    let healed = faults.healed_by().max(s.sim.now());
    s.sim.run_until(healed);
    let bound = secs(15) + 3 * secs(10) + secs(5);
    s.sim.run_until(healed + bound);

    // All replication flowed through the anti-entropy plane.
    let st = s.sim.stats();
    assert!(st.kind("sync-digest").messages > 0, "seed {seed}: no digest round ever ran");
    assert_eq!(
        st.kind("fwd-adverts").messages,
        0,
        "seed {seed}: legacy full-state push fired under anti-entropy"
    );

    // Equivalence: every registry holds exactly the same live (id, version)
    // map. Versions must match exactly — renewals flow as deltas without a
    // version bump, so a version skew means a replica silently diverged.
    let reference = view(&s, s.registries[0]);
    assert!(!reference.is_empty(), "seed {seed}: nothing was ever replicated");
    for &r in &s.registries[1..] {
        let got = view(&s, r);
        assert_eq!(
            got, reference,
            "seed {seed}: registry {r} diverged from {} after the bound",
            s.registries[0]
        );
    }
}

/// Eight seeds, fanned across cores: loss + duplication + reordering +
/// partial partition, then bounded-time convergence of every store view.
#[test]
fn federated_stores_converge_after_faults_heal() {
    parallel::map_seeds(8, |seed| check_convergence(seed));
}
