//! Determinism regression tests: the experiment pipeline — workload
//! generation, topology, churn schedule, protocol traffic, metrics — must be
//! a pure function of the root seed. Comparability across discovery
//! mechanisms rests on this: two mechanisms are only comparable when they
//! face byte-identical worlds.

use std::fmt::Write as _;

use sds_core::QueryOptions;
use sds_integration::query_and_collect;
use sds_protocol::ModelId;
use sds_rand::Seed;
use sds_simnet::secs;
use sds_workload::{ChurnPlan, Deployment, PopulationSpec, Scenario, ScenarioConfig};

/// Runs a full churned federated scenario and renders every observable
/// metric — per-query hit lists, traffic counters, clock — into one string.
/// Byte-equality of two transcripts is the determinism criterion.
fn metrics_transcript(seed: u64) -> String {
    let mut s = Scenario::build(ScenarioConfig {
        lans: 3,
        clients_per_lan: 1,
        deployment: Deployment::Federated { registries_per_lan: 2 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 16,
            queries: 10,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    });
    let providers: Vec<_> = s.services.iter().map(|(n, _)| *n).collect();
    ChurnPlan::exponential(&providers, 30_000.0, 10_000.0, secs(30), seed).apply(&mut s.sim);
    s.sim.run_until(secs(40));

    let mut out = String::new();
    for qi in 0..8 {
        let payload = s.queries[qi % s.queries.len()].clone();
        let mut got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        got.sort();
        writeln!(out, "q{qi}: {got:?}").unwrap();
    }
    writeln!(
        out,
        "bytes={} msgs={} now={}",
        s.sim.stats().total_bytes(),
        s.sim.stats().total_messages(),
        s.sim.now()
    )
    .unwrap();
    out
}

#[test]
fn same_seed_produces_byte_identical_metrics() {
    let a = metrics_transcript(42);
    let b = metrics_transcript(42);
    assert_eq!(a, b, "same seed must reproduce the experiment byte-for-byte");
}

#[test]
fn different_seeds_produce_divergent_runs() {
    let a = metrics_transcript(42);
    let b = metrics_transcript(43);
    // Workload, placement, churn, and traffic all re-derive from the seed;
    // two adjacent seeds agreeing on the full transcript would mean the
    // seed is not actually reaching the generators.
    assert_ne!(a, b, "adjacent seeds must explore different worlds");
}

#[test]
fn sibling_derived_streams_are_statistically_independent() {
    // Pearson correlation between uniform draws of sibling component
    // streams: |r| stays small for independent streams. This is the
    // integration-level counterpart of the bit-agreement unit test in
    // sds-rand — it guards the seeding scheme components actually use.
    let root = Seed(2026);
    let labels = ["simnet.node.1", "simnet.node.2", "workload.churn", "workload.population"];
    let n = 4_096;
    let streams: Vec<Vec<f64>> = labels
        .iter()
        .map(|l| {
            let mut rng = root.derive(l).rng();
            (0..n).map(|_| rng.gen_f64()).collect()
        })
        .collect();
    for i in 0..streams.len() {
        for j in (i + 1)..streams.len() {
            let (a, b) = (&streams[i], &streams[j]);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let (ma, mb) = (mean(a), mean(b));
            let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let var = |v: &[f64], m: f64| v.iter().map(|x| (x - m).powi(2)).sum::<f64>();
            let r = cov / (var(a, ma) * var(b, mb)).sqrt();
            assert!(
                r.abs() < 0.05,
                "streams '{}' and '{}' correlate (r = {r:.4})",
                labels[i],
                labels[j]
            );
        }
    }
}

#[test]
fn derivation_labels_do_not_alias_across_components() {
    // Every component label used anywhere in the workspace must map to a
    // distinct seed: an alias would silently couple two subsystems.
    let root = Seed(7);
    // The labels production code actually derives (simnet/engine.rs,
    // workload/{population,churn}.rs) plus the per-node family.
    let mut labels =
        vec!["simnet.link".to_string(), "workload.population".into(), "workload.churn".into()];
    for i in 0..64u64 {
        labels.push(format!("simnet.node.{i}"));
    }
    let mut seen = std::collections::HashSet::new();
    for l in &labels {
        assert!(seen.insert(root.derive(l)), "label '{l}' aliases another component seed");
    }
}
