//! Multi-seed overload soak plus the retry-amplification regression.
//!
//! The per-seed runner lives in `sds_integration::overload`: a deterministic
//! flash crowd against capacity-bounded registries with the full overload
//! layer on. Invariants per seed: every `Busy`-nacked query is eventually
//! answered by a retry, no lease ever expires under shedding, the busy band
//! actually engaged, and the metrics fingerprint is byte-identical across
//! runs of the same seed. Seed count comes from `SDS_CHAOS_SEEDS` (default
//! 8), fanned across cores via `sds_bench::parallel`.

use sds_core::{ClientNode, QueryMode, QueryOptions, RegistryNode, RetryPolicy};
use sds_integration::overload::run_overload_soak;
use sds_simnet::{secs, NodeCapacity};
use sds_workload::{Deployment, Scenario, ScenarioConfig};

fn seed_count() -> u64 {
    std::env::var("SDS_CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
}

#[test]
fn overload_soak_upholds_backpressure_invariants_across_seeds() {
    let seeds: Vec<u64> = (0..seed_count()).collect();
    let outcomes = sds_bench::parallel::map(&seeds, |_, &seed| run_overload_soak(seed));
    for (seed, outcome) in seeds.iter().zip(&outcomes) {
        assert!(
            outcome.report.check_count() > 0,
            "seed {seed}: the soak evaluated no invariants"
        );
        assert!(
            outcome.report.is_clean(),
            "seed {seed} violated invariants:\n{}",
            outcome.report.summary()
        );
    }
}

#[test]
fn overload_soak_is_deterministic_per_seed() {
    for seed in [2_000u64, 2_001] {
        let a = run_overload_soak(seed);
        let b = run_overload_soak(seed);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: runs diverged");
    }
    assert_ne!(
        run_overload_soak(2_000).fingerprint,
        run_overload_soak(2_001).fingerprint,
        "different seeds produce different storms"
    );
}

/// Regression: a client whose original query is merely *queued* (not lost)
/// behind a backlog re-sends at its backoff checkpoint. Before admission
/// dedup by root sequence, the registry treated the re-send as a brand-new
/// query — double evaluation, double adoption, and a second federation
/// fan-out per retry (retry amplification: the storm's own medicine made
/// the overload worse). Now the retry is recognized, counted in
/// `retries_deduped`, and answered cheaply from the already-admitted root.
#[test]
fn queued_retry_is_deduplicated_not_readopted() {
    let mut cfg = ScenarioConfig {
        lans: 1,
        clients_per_lan: 2,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        seed: 7,
        // A modeled budget of 1 op/ms with a deep queue: backlog delays
        // processing without dropping anything.
        registry_capacity: Some(NodeCapacity { ops_per_tick: 1, queue_limit: 800 }),
        // Fast checkpoints: the client re-sends ~100-150 ms in, well before
        // the queued original drains.
        retry: Some(RetryPolicy {
            max_retries: 3,
            base_backoff: 100,
            max_backoff: 400,
            jitter: 50,
        }),
        ..Default::default()
    };
    cfg.client.attach.ping_interval = 0;
    cfg.service.attach.ping_interval = 0;
    let mut s = Scenario::build(cfg);
    s.sim.run_until(secs(3));

    // Pick a query with live matches so the answer is observable.
    let qi = (0..s.queries.len())
        .find(|&qi| !s.expected_now(&s.queries[qi].clone()).is_empty())
        .expect("workload has matchable queries");
    let opts = QueryOptions {
        max_responses: Some(4),
        ttl: 0,
        timeout: secs(2),
        mode: QueryMode::Unicast,
    };

    // Flood from client 0: ~300 ms of backlog in front of the registry.
    for _ in 0..300 {
        s.issue(0, qi, opts.clone());
    }
    // Let the flood land (per-message latency jitter must not let the
    // measured query overtake it), then queue the measured query behind it:
    // it drains ~250 ms later, past the client's first backoff checkpoint.
    s.sim.run_until(secs(3) + 50);
    s.issue(1, qi, opts.clone());
    s.sim.run_until(secs(8));

    let registry = s.sim.handler::<RegistryNode>(s.registries[0]).unwrap();
    assert_eq!(
        s.sim.stats().capacity_dropped_messages,
        0,
        "backlog must delay, not drop — otherwise this tests loss recovery"
    );
    assert!(
        registry.stats.retries_deduped > 0,
        "no backoff re-send was recognized as a duplicate root"
    );
    // Dedup must not regress answering: every query completes answered.
    let measured = &s.sim.handler::<ClientNode>(s.clients[1]).unwrap().completed;
    assert_eq!(measured.len(), 1, "one issue, one completion");
    assert!(measured[0].retries > 0, "the backlog forced a re-send");
    assert!(measured[0].first_response_at.is_some(), "the queued original answered");
    assert!(!measured[0].hits.is_empty(), "the answer carries the matches");
    // The crux: re-sends never inflate admission. Adoptions are bounded by
    // the number of *distinct* queries, however many retries were sent.
    let retried_total: u64 = (0..s.clients.len())
        .flat_map(|ci| s.completed(ci))
        .map(|cq| u64::from(cq.retries))
        .sum();
    assert!(retried_total > 0, "the flood itself must have retried");
    assert!(
        registry.stats.queries_adopted <= 301,
        "admission exceeded distinct queries: {} adopted, retry amplification is back",
        registry.stats.queries_adopted
    );
}
