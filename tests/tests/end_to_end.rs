//! Whole-system integration tests: generated workloads driven through full
//! deployments, checked against the ground-truth oracle.

use sds_core::QueryOptions;
use sds_integration::query_and_collect;
use sds_metrics::recall;
use sds_protocol::ModelId;
use sds_simnet::secs;
use sds_workload::{ChurnPlan, Deployment, PopulationSpec, Scenario, ScenarioConfig};

fn config(deployment: Deployment, model: ModelId, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        lans: 3,
        clients_per_lan: 1,
        deployment,
        population: PopulationSpec {
            model,
            services: 18,
            queries: 12,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        ..Default::default()
    }
}

#[test]
fn federated_deployment_reaches_full_recall_on_every_model() {
    for model in [ModelId::Uri, ModelId::Template, ModelId::Semantic] {
        let mut s = Scenario::build(config(
            Deployment::Federated { registries_per_lan: 1 },
            model,
            11,
        ));
        s.sim.run_until(secs(4));
        for qi in 0..6 {
            let payload = s.queries[qi].clone();
            let expected = s.expected_now(&payload);
            let got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
            assert_eq!(
                recall(&expected, &got),
                1.0,
                "{model:?} query {qi}: expected {expected:?}, got {got:?}"
            );
        }
    }
}

#[test]
fn whole_scenario_runs_are_deterministic() {
    let run = |seed: u64| -> (u64, u64, Vec<usize>) {
        let mut s = Scenario::build(config(
            Deployment::Federated { registries_per_lan: 2 },
            ModelId::Semantic,
            seed,
        ));
        s.sim.run_until(secs(5));
        let mut hit_counts = Vec::new();
        for qi in 0..5 {
            let payload = s.queries[qi].clone();
            hit_counts.push(query_and_collect(&mut s, qi, payload, QueryOptions::default()).len());
        }
        (s.sim.stats().total_bytes(), s.sim.stats().total_messages(), hit_counts)
    };
    assert_eq!(run(99), run(99), "same seed, same world, same bytes");
    assert_ne!(run(99).0, run(100).0, "different seeds diverge");
}

#[test]
fn churned_federation_recovers_after_revivals() {
    let mut s = Scenario::build(config(
        Deployment::Federated { registries_per_lan: 1 },
        ModelId::Uri,
        21,
    ));
    let providers: Vec<_> = s.services.iter().map(|(n, _)| *n).collect();
    // One churn cycle: everyone down briefly at some point in the first
    // minute, then stable.
    let plan = ChurnPlan::exponential(&providers, 20_000.0, 8_000.0, secs(60), 5);
    plan.apply(&mut s.sim);
    s.sim.run_until(secs(120));

    // After churn settles, every live provider must be rediscoverable
    // (republish-on-revive plus lease purging of dead incarnations).
    for qi in 0..8 {
        let payload = s.queries[qi].clone();
        let expected = s.expected_now(&payload);
        let got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        assert_eq!(
            recall(&expected, &got),
            1.0,
            "query {qi} after churn: expected {expected:?}, got {got:?}"
        );
    }
}

#[test]
fn decentralized_matches_oracle_for_local_scope() {
    let mut s = Scenario::build(config(Deployment::Decentralized, ModelId::Semantic, 31));
    s.sim.run_until(secs(2));
    for qi in 0..6 {
        let payload = s.queries[qi].clone();
        let client_lan = s.sim.topology().lan_of(s.clients[qi % s.clients.len()]);
        let expected_local: Vec<_> = s
            .expected_now(&payload)
            .into_iter()
            .filter(|&p| s.sim.topology().lan_of(p) == client_lan)
            .collect();
        let got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        assert_eq!(
            recall(&expected_local, &got),
            1.0,
            "decentralized discovery covers exactly the local LAN (query {qi})"
        );
        assert!(
            got.iter().all(|&p| s.sim.topology().lan_of(p) == client_lan),
            "no cross-LAN hits without registries"
        );
    }
}

#[test]
fn response_control_is_enforced_end_to_end() {
    let mut s = Scenario::build(config(
        Deployment::Federated { registries_per_lan: 1 },
        ModelId::Semantic,
        41,
    ));
    s.sim.run_until(secs(4));
    // A broad query that matches many providers, capped at 2.
    let broad = s
        .queries
        .iter()
        .position(|q| s.expected_now(q).len() >= 3)
        .expect("some broad query exists");
    let payload = s.queries[broad].clone();
    let got = query_and_collect(
        &mut s,
        0,
        payload,
        QueryOptions { max_responses: Some(2), ..Default::default() },
    );
    assert_eq!(got.len(), 2, "federation-wide response control");
}
