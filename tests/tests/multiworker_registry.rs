//! The multi-worker registry scenario: end-to-end worker-count (and shard-
//! count) unobservability for the registry data plane.
//!
//! Every registry in the chaos-soak battlefield runs a sharded engine with
//! `data_plane_workers` scoped threads fanning its broadcast scans and batch
//! queues — *inside* the node handler, mid-simulation. The contract (DESIGN
//! §16) is that this is an observable no-op: the full metrics-transcript
//! digest of the soak must be bit-for-bit identical to the default
//! single-shard, single-worker plane, whatever `(shard_count, workers)` the
//! registry runs. A divergence here means thread scheduling leaked into
//! ranked hits, lease grants, or wire traffic — exactly the regression class
//! the parallel merge order is designed out of.
//!
//! Worker counts honor the `SDS_REGISTRY_WORKERS` override (positive
//! integer, hard error otherwise) so CI can attribute a divergence to one
//! pinned count per invocation.

use sds_integration::soak::{run_soak, run_soak_data_plane, DataPlane};

fn worker_counts() -> Vec<usize> {
    sds_registry::pool::env_workers().map_or_else(|| vec![1, 2, 4], |w| vec![w])
}

#[test]
fn multiworker_data_plane_is_unobservable_end_to_end() {
    for seed in [0u64, 1] {
        let baseline = run_soak(seed);
        baseline.report.assert_clean();
        for workers in worker_counts() {
            let plane = DataPlane { shard_count: 4, workers };
            let outcome = run_soak_data_plane(seed, plane);
            outcome.report.assert_clean();
            assert_eq!(
                outcome.digest, baseline.digest,
                "soak digest diverged from the default data plane at seed {seed} \
                 with {plane:?} — shard/worker count leaked into observable behaviour"
            );
        }
    }
}
