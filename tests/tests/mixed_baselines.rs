//! Integration tests pitting the architecture against the baselines on the
//! same simulated worlds — the comparisons the paper makes qualitatively.

use std::sync::Arc;

use sds_baselines::{presets, ClusterRegistryNode, DhtConfig, DhtNode, WsProxyNode, WsServiceNode};
use sds_baselines::cluster::ClusterConfig;
use sds_core::{ClientConfig, ClientNode, QueryMode, QueryOptions, ServiceConfig, ServiceNode};
use sds_protocol::{Codec, Description, DiscoveryMessage, QueryPayload};
use sds_semantic::{ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::{secs, NodeId, Sim, SimConfig, Topology};
use sds_workload::battlefield;

#[test]
fn uddi_cluster_survives_replica_loss_but_serves_stale_data() {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 3);
    let r0 = sim.add_node(
        lan,
        Box::new(ClusterRegistryNode::new(
            ClusterConfig { replicas: vec![NodeId(1)], ..Default::default() },
            None,
        )),
    );
    let r1 = sim.add_node(
        lan,
        Box::new(ClusterRegistryNode::new(
            ClusterConfig { replicas: vec![NodeId(0)], ..Default::default() },
            None,
        )),
    );
    let svc = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            presets::uddi_service(r0),
            vec![Description::Uri("urn:svc:x".into())],
            None,
        )),
    );
    // The client is bound to replica r1 (load spreading).
    let client = sim.add_node(lan, Box::new(ClientNode::new(presets::centralized_client(r1))));
    sim.run_until(secs(2));

    // Replica r0 (the publish target) dies; r1 still answers from the
    // replicated copy — the cluster's strength.
    sim.crash_node(r0);
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(ctx, QueryPayload::Uri("urn:svc:x".into()), QueryOptions::default());
    });
    sim.run_until(secs(8));
    assert_eq!(
        sim.handler::<ClientNode>(client).unwrap().completed[0].hits.len(),
        1,
        "replication survives replica loss"
    );

    // But when the SERVICE dies, the cluster serves it forever — the
    // lease-less weakness.
    sim.crash_node(svc);
    sim.run_until(secs(200));
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(ctx, QueryPayload::Uri("urn:svc:x".into()), QueryOptions::default());
    });
    sim.run_until(secs(206));
    let done = &sim.handler::<ClientNode>(client).unwrap().completed;
    assert_eq!(done[1].hits.len(), 1, "stale advert still served 3 minutes after crash");
}

#[test]
fn wsdiscovery_proxy_and_core_client_interoperate() {
    // The WS-Discovery baseline reuses the generic protocol, so an
    // unmodified sds-core client can discover through the proxy — the
    // paper's "layered, coherent stack" argument in action.
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 5);
    let _proxy = sim.add_node(lan, Box::new(WsProxyNode::new(None, secs(5), Codec::default())));
    let _svc = sim.add_node(
        lan,
        Box::new(WsServiceNode::new(
            vec![Description::Uri("urn:svc:printer".into())],
            None,
            Codec::default(),
        )),
    );
    let client = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(ctx, QueryPayload::Uri("urn:svc:printer".into()), QueryOptions::default());
    });
    sim.run_until(secs(6));
    assert_eq!(sim.handler::<ClientNode>(client).unwrap().completed[0].hits.len(), 1);
}

#[test]
fn dht_and_core_service_nodes_interoperate_for_exact_keys() {
    let (ont, classes) = battlefield();
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let mut topo = Topology::new();
    let lans: Vec<_> = (0..3).map(|_| topo.add_lan()).collect();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 6);
    let members: Vec<NodeId> = (0..3u32).map(NodeId).collect();
    for &lan in &lans {
        sim.add_node(
            lan,
            Box::new(DhtNode::new(DhtConfig {
                members: members.clone(),
                beacon_interval: secs(5),
                codec: Codec::default(),
            })),
        );
    }
    // A core service node publishes a semantic profile through the DHT.
    sim.add_node(
        lans[0],
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(ServiceProfile::new("radar", classes.radar_service))],
            Some(idx.clone()),
        )),
    );
    let client = sim.add_node(lans[2], Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(2));

    // Exact category key: resolvable. Parent category: not.
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(
            ctx,
            QueryPayload::Semantic(ServiceRequest::for_category(classes.radar_service)),
            QueryOptions::default(),
        );
        c.issue_query(
            ctx,
            QueryPayload::Semantic(ServiceRequest::for_category(classes.surveillance)),
            QueryOptions::default(),
        );
    });
    sim.run_until(secs(8));
    let done = &sim.handler::<ClientNode>(client).unwrap().completed;
    let exact = done.iter().find(|q| q.seq == 0).unwrap();
    let parent = done.iter().find(|q| q.seq == 1).unwrap();
    assert_eq!(exact.hits.len(), 1);
    assert_eq!(parent.hits.len(), 0, "hash index cannot subsume");
}

#[test]
fn multicast_query_mode_shows_implosion_without_registry() {
    // 12 identical providers, no registry: a multicast query triggers one
    // response per provider at the client.
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 8);
    for _ in 0..12 {
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                presets::decentralized_service(),
                vec![Description::Uri("urn:svc:chat".into())],
                None,
            )),
        );
    }
    let client =
        sim.add_node(lan, Box::new(ClientNode::new(presets::decentralized_client())));
    sim.run_until(secs(1));
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(
            ctx,
            QueryPayload::Uri("urn:svc:chat".into()),
            QueryOptions { mode: QueryMode::MulticastLan, ..Default::default() },
        );
    });
    sim.run_until(secs(6));
    let q = &sim.handler::<ClientNode>(client).unwrap().completed[0];
    assert_eq!(q.responses_received, 12, "response implosion");
    assert_eq!(q.hits.len(), 12);
}
