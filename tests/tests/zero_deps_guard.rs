//! Guard: the workspace stays buildable fully offline.
//!
//! The build environment has no crates.io registry, so every dependency in
//! every manifest must resolve inside the repository — either a `path`
//! dependency or `workspace = true` inheriting a root entry that is itself a
//! `path` dependency. This test parses all `Cargo.toml`s (no TOML crate,
//! for the same reason) and fails the moment anyone reintroduces an
//! external dependency like the `rand`/`proptest`/`criterion` entries that
//! broke the seed build.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // tests/ is a direct member of the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("tests/ has a parent").to_path_buf()
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable workspace dir") {
        let entry = entry.expect("readable dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // target/ holds generated manifests for external crates; hidden
            // dirs (.git) are not ours.
            if name != "target" && !name.starts_with('.') {
                collect_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// True for section headers whose entries declare dependencies.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim();
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.ends_with(".dependencies")
        || h.ends_with(".dev-dependencies")
        || h.ends_with(".build-dependencies")
}

/// Lints one manifest; returns violation descriptions.
fn lint_manifest(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("readable manifest");
    let mut violations = Vec::new();
    let mut in_dep_section = false;
    let mut dep_table_header: Option<String> = None; // e.g. [dependencies.foo]
    let mut dep_table_ok = false;

    let flush_table = |header: &mut Option<String>, ok: bool, violations: &mut Vec<String>| {
        if let Some(h) = header.take() {
            if !ok {
                violations.push(format!("[{h}] has no `path` and no `workspace = true`"));
            }
        }
    };

    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            flush_table(&mut dep_table_header, dep_table_ok, &mut violations);
            let header = line.trim_matches(['[', ']']);
            // A `[dependencies.foo]`-style expanded dependency table.
            let parent = header.rsplit_once('.').map(|(p, _)| p).unwrap_or("");
            if is_dependency_section(parent) {
                dep_table_header = Some(header.to_string());
                dep_table_ok = false;
                in_dep_section = false;
            } else {
                in_dep_section = is_dependency_section(header);
            }
            continue;
        }
        if dep_table_header.is_some() {
            if line.starts_with("path") || line == "workspace = true" {
                dep_table_ok = true;
            }
            continue;
        }
        if in_dep_section {
            let Some((name, value)) = line.split_once('=') else { continue };
            let (name, value) = (name.trim(), value.trim());
            if !(value.contains("path") || value.contains("workspace = true")) {
                violations.push(format!(
                    "dependency `{name}` = `{value}` is external (needs `path` or `workspace = true`)"
                ));
            }
        }
    }
    flush_table(&mut dep_table_header, dep_table_ok, &mut violations);
    violations
}

#[test]
fn every_dependency_in_every_manifest_is_in_workspace() {
    let root = workspace_root();
    let mut manifests = Vec::new();
    collect_manifests(&root, &mut manifests);
    assert!(
        manifests.len() >= 12,
        "expected the full workspace (root + 10 crates + tests + examples), found {manifests:?}"
    );

    let mut all: Vec<String> = Vec::new();
    for m in &manifests {
        for v in lint_manifest(m) {
            all.push(format!("{}: {v}", m.strip_prefix(&root).unwrap_or(m).display()));
        }
    }
    assert!(
        all.is_empty(),
        "external dependencies would break the offline build:\n  {}",
        all.join("\n  ")
    );
}

#[test]
fn banned_external_crates_never_reappear() {
    // The three deps that broke the seed build; sds-rand and the bench
    // harness replace them in-workspace.
    let root = workspace_root();
    let mut manifests = Vec::new();
    collect_manifests(&root, &mut manifests);
    for m in &manifests {
        let text = std::fs::read_to_string(m).expect("readable manifest");
        for banned in ["proptest", "criterion"] {
            assert!(
                !text.contains(banned),
                "{}: mentions `{banned}`, which is not vendored and breaks offline builds",
                m.display()
            );
        }
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            // `rand` as a bare dependency name (sds-rand is ours).
            if let Some((name, _)) = line.split_once('=') {
                assert_ne!(
                    name.trim(),
                    "rand",
                    "{}: depends on external `rand`; use sds-rand",
                    m.display()
                );
            }
        }
    }
}

#[test]
fn guard_linter_catches_external_deps() {
    // Self-test of the linter on a synthetic manifest.
    let dir = std::env::temp_dir().join(format!("sds-guard-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("Cargo.toml");
    std::fs::write(
        &manifest,
        r#"
[package]
name = "x"

[dependencies]
good = { path = "../good" }
inherited = { workspace = true }
bad = "1.0"

[dependencies.table-bad]
version = "0.8"

[dev-dependencies]
also-bad = { version = "2", features = ["std"] }
"#,
    )
    .unwrap();
    let violations = lint_manifest(&manifest);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(violations.len(), 3, "exactly the three external entries: {violations:?}");
    assert!(violations.iter().any(|v| v.contains("`bad`")));
    assert!(violations.iter().any(|v| v.contains("table-bad")));
    assert!(violations.iter().any(|v| v.contains("`also-bad`")));
}
