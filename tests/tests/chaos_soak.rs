//! Multi-seed chaos soak: combined node churn and network-fault injection
//! on the battlefield scenario, followed by post-heal convergence checks.
//!
//! The per-seed runner lives in `sds_integration::soak` (shared with the
//! engine-equivalence golden-fingerprint test). Invariants per seed:
//!
//! * **Discoverable**: every live advertised service is found, per oracle;
//! * **No zombie leases**: no expired advert lingers in a live registry
//!   beyond the purge cadence;
//! * **No double counting**: duplicated deliveries never inflate a client's
//!   response count, and no provider appears twice in a result;
//! * **Determinism**: the same seed reproduces byte-identical plans,
//!   traffic counters, and results (compared by fingerprint);
//! * **No panic**: every handler survived corrupt frames (implicit — the
//!   test ran).
//!
//! Seed count comes from `SDS_CHAOS_SEEDS` (default 8, the bounded CI
//! quick mode); raise it for longer soaks. Seeds fan across cores via
//! `sds_bench::parallel` — each seed's simulation shares nothing, so the
//! fan-out cannot perturb results (asserted by the driver-equivalence test
//! in `engine_equivalence.rs`).

use sds_integration::soak::run_soak;

fn seed_count() -> u64 {
    std::env::var("SDS_CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
}

#[test]
fn chaos_soak_upholds_convergence_invariants_across_seeds() {
    let seeds: Vec<u64> = (0..seed_count()).collect();
    let outcomes = sds_bench::parallel::map(&seeds, |_, &seed| run_soak(seed));
    for (seed, outcome) in seeds.iter().zip(&outcomes) {
        assert!(
            outcome.report.check_count() > 0,
            "seed {seed}: the soak evaluated no invariants"
        );
        assert!(
            outcome.report.is_clean(),
            "seed {seed} violated invariants:\n{}",
            outcome.report.summary()
        );
    }
}

#[test]
fn chaos_soak_is_deterministic_per_seed() {
    // Same seed ⇒ byte-identical fault schedule, traffic counters, query
    // results, and store contents (compared by fingerprint of the full
    // metrics transcript).
    for seed in [1_000u64, 1_001] {
        let a = run_soak(seed);
        let b = run_soak(seed);
        assert_eq!(a.digest, b.digest, "seed {seed}: runs diverged");
    }
    assert_ne!(
        run_soak(1_000).digest,
        run_soak(1_001).digest,
        "different seeds produce different schedules"
    );
}
