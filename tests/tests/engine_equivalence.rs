//! Byte-identical equivalence evidence for the engine optimization work.
//!
//! The shared-payload delivery path, the generation-stamped (tombstone-free)
//! event core, and the lazily materialized per-node RNGs were all introduced
//! under one contract: *no observable bit changes*. These tests pin that
//! contract:
//!
//! * the full chaos-soak metric transcript digests for eight seeds must equal
//!   the goldens recorded from the pre-change engine (same commit history,
//!   release profile) — the soak exercises multicast fan-out, duplication,
//!   corruption (copy-on-write forks), reordering, timer cancellation storms,
//!   crashes and revivals, so a single diverged RNG draw or reordered
//!   delivery flips the digest;
//! * the parallel multi-seed driver must return exactly what the sequential
//!   loop returns, at every worker count, including for full simulation
//!   workloads.

use sds_bench::parallel;
use sds_core::SyncMode;
use sds_integration::soak::{run_soak, run_soak_partitioned, run_soak_with};

/// Chaos-soak digests recorded from the engine *before* the shared-payload /
/// generation-stamp / lazy-RNG rewrite (release build). The optimized engine
/// must reproduce them bit-for-bit.
const PRE_CHANGE_GOLDENS: [(u64, u64); 8] = [
    (0, 0xD2190D2842686EFA),
    (1, 0x418E169F0D671E7C),
    (2, 0x0A986879CD893641),
    (3, 0x17D2D02FC265149E),
    (4, 0x26424E8E6ECB489A),
    (5, 0x455EC97B8B4DF60A),
    (6, 0x0E57546A85F34D55),
    (7, 0xCEFEEDC802D84C2E),
];

/// The two seeds cheap enough for the debug-profile tier-1 run; the release
/// variant below covers all eight. Pinned to `SyncMode::Legacy`: the goldens
/// predate anti-entropy federation, and legacy mode contracts to reproduce
/// the historical wire behaviour byte-for-byte.
#[test]
fn chaos_digests_match_pre_change_engine() {
    for &(seed, want) in &PRE_CHANGE_GOLDENS[..2] {
        let got = run_soak_with(seed, SyncMode::Legacy).digest;
        assert_eq!(
            got, want,
            "seed {seed}: engine output diverged from the pre-optimization transcript \
             (got 0x{got:016X}, want 0x{want:016X})"
        );
    }
}

/// Full eight-seed sweep, driven through the parallel driver — one test
/// proving both halves at once: the optimized engine reproduces the
/// pre-change transcripts, and the parallel fan-out changes nothing.
/// Expensive in debug, so gated to release-style soak runs like the chaos
/// soak's long tail.
#[test]
#[ignore = "eight release-profile soaks; run explicitly via ci.sh"]
fn chaos_digests_match_pre_change_engine_all_seeds_parallel() {
    let seeds: Vec<u64> = PRE_CHANGE_GOLDENS.iter().map(|&(s, _)| s).collect();
    let digests = parallel::map(&seeds, |_, &seed| run_soak_with(seed, SyncMode::Legacy).digest);
    for (&(seed, want), &got) in PRE_CHANGE_GOLDENS.iter().zip(&digests) {
        assert_eq!(got, want, "seed {seed} under the parallel driver");
    }
}

/// The parallel driver must be observably identical to the sequential loop
/// for real simulation workloads, at every worker count — including counts
/// larger than the machine's core count (the threaded path must be correct,
/// not just never taken, on small machines).
#[test]
fn parallel_driver_matches_sequential_for_simulation_workloads() {
    let seeds: Vec<u64> = (100..106).collect();
    let sequential: Vec<u64> = seeds.iter().map(|&s| run_soak(s).digest).collect();
    for workers in [2, 3, 8] {
        let parallel = parallel::map_with_workers(workers, &seeds, |_, &s| run_soak(s).digest);
        assert_eq!(parallel, sequential, "workers={workers}");
    }
}

/// `map` (auto worker count, honoring `SDS_BENCH_THREADS`) returns results
/// in input order with the index argument matching the item position.
#[test]
fn parallel_map_indexes_and_orders_by_input() {
    let seeds: Vec<u64> = (0..16).collect();
    let out = parallel::map(&seeds, |i, &s| {
        assert_eq!(i as u64, s);
        (i, s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    });
    for (i, &(idx, v)) in out.iter().enumerate() {
        assert_eq!(idx, i);
        assert_eq!(v, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

/// Chaos-soak digests for the *partitioned* engine (one share-nothing domain
/// per LAN), recorded at `workers = 1`. Partitioned mode draws link/fault
/// randomness from per-LAN streams (so domains can run concurrently without
/// sharing an RNG) and serializes WAN sends per uplink rather than through
/// one global pipe, so its transcripts are a distinct golden family from
/// [`PRE_CHANGE_GOLDENS`] — but within the family the digest is a pure
/// function of the seed: worker count, thread scheduling, and domain-to-
/// worker assignment must have zero observable effect. Every entry was
/// verified invariant-clean (full convergence report) when recorded.
const PARTITIONED_GOLDENS: [(u64, u64); 8] = [
    (0, 0x5E41BE48343340E3),
    (1, 0x38AE9ADC996698AA),
    (2, 0xBA4A216A138F1445),
    (3, 0x1B5A0A63F4377301),
    (4, 0xAB44ED9B5746647A),
    (5, 0x9A1F401B674C6EC0),
    (6, 0x9700AB2AAEC8DA9D),
    (7, 0x9F19109B53F71382),
];

/// Worker counts to sweep, from `SDS_EQ_WORKERS` (comma-separated) or the
/// default `1,2,4`. CI invokes the quick test once per worker count to get
/// separate pass/fail signals; a bare `cargo test` sweeps all three.
fn eq_workers() -> Vec<usize> {
    match std::env::var("SDS_EQ_WORKERS") {
        Ok(s) => s
            .split(',')
            .map(|w| {
                w.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| panic!("SDS_EQ_WORKERS: bad worker count {w:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// Worker-count invariance, quick tier: the partitioned engine must produce
/// the pinned digest — and a clean convergence report — for every worker
/// count, on the two cheap seeds. The expensive all-seed sweep is below.
#[test]
fn partitioned_chaos_digests_are_worker_count_invariant() {
    for &(seed, want) in &PARTITIONED_GOLDENS[..2] {
        for workers in eq_workers() {
            let o = run_soak_partitioned(seed, workers);
            o.report.assert_clean();
            assert_eq!(
                o.digest, want,
                "seed {seed} workers {workers}: partitioned transcript diverged \
                 (got 0x{:016X}, want 0x{want:016X})",
                o.digest
            );
        }
    }
}

/// Full eight-seed partitioned sweep across the worker counts. Release-tier
/// like the eight-seed sequential sweep above.
#[test]
#[ignore = "eight release-profile soaks per worker count; run explicitly via ci.sh"]
fn partitioned_chaos_digests_are_worker_count_invariant_all_seeds() {
    for &(seed, want) in &PARTITIONED_GOLDENS {
        for workers in eq_workers() {
            let o = run_soak_partitioned(seed, workers);
            o.report.assert_clean();
            assert_eq!(o.digest, want, "seed {seed} workers {workers}");
        }
    }
}
