//! Rolling-chaos soak: repeated fault windows (asymmetric WAN loss, pair
//! cuts, registry crashes) with recovery measured after each heal, run for
//! the self-healing configuration and the passive baseline.
//!
//! Assertions per seed:
//!
//! * every window **recovers** (recall 1.0, no stale lease) within
//!   `SDS_RECOVERY_BOUND` ms of healing when the self-healing layer is on;
//! * self-healing recovery is never slower than the passive baseline on
//!   the same schedule (total over windows);
//! * the healing machinery actually fired (retry publishes or probation
//!   reinstatements — a soak that never exercises the layer proves
//!   nothing);
//! * both modes are deterministic per seed.
//!
//! `SDS_CHAOS_SEEDS` picks the seed count (default 3 for CI; the full
//! acceptance run uses 8).

use sds_bench::parallel;
use sds_workload::{run_rolling, RollingChaosConfig};

fn seed_count() -> u64 {
    std::env::var("SDS_CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

fn recovery_bound() -> u64 {
    std::env::var("SDS_RECOVERY_BOUND").ok().and_then(|v| v.parse().ok()).unwrap_or(30_000)
}

#[test]
fn rolling_chaos_recovers_within_bound_and_healing_beats_passive() {
    let bound = recovery_bound();
    let mut healing_total = 0u64;
    let mut passive_total = 0u64;
    // Each (seed, mode) run is an independent simulation — fan the pairs
    // across cores via the parallel driver, assert in seed order.
    let runs = parallel::map_seeds(seed_count(), |seed| {
        (
            run_rolling(&RollingChaosConfig::new(seed, true)),
            run_rolling(&RollingChaosConfig::new(seed, false)),
        )
    });
    for (seed, (healing, passive)) in runs.iter().enumerate() {
        let seed = seed as u64;
        for w in &healing.windows {
            let r = w.recovery_ms.unwrap_or_else(|| {
                panic!("seed {seed}: healing run never recovered from {} window", w.kind)
            });
            assert!(
                r <= bound,
                "seed {seed}: {} window took {r} ms to recover (bound {bound})",
                w.kind
            );
        }
        assert!(
            healing.retry_publishes + healing.peers_reinstated > 0,
            "seed {seed}: the healing machinery was never exercised"
        );

        // Passive either recovers slower or not at all; when it never
        // recovers, charge it the full sampled gap per failed window.
        let gap = RollingChaosConfig::new(seed, false).gap_ms;
        let h_total = healing.total_recovery_ms().expect("checked above");
        let p_total: u64 =
            passive.windows.iter().map(|w| w.recovery_ms.unwrap_or(gap)).sum();
        assert!(
            h_total <= p_total,
            "seed {seed}: healing recovered in {h_total} ms but passive in {p_total} ms"
        );
        eprintln!(
            "seed {seed}: healing {h_total} ms, passive {p_total} ms, windows: {:?} vs {:?}",
            healing.windows.iter().map(|w| w.recovery_ms).collect::<Vec<_>>(),
            passive.windows.iter().map(|w| w.recovery_ms).collect::<Vec<_>>(),
        );
        healing_total += h_total;
        passive_total += p_total;
    }
    assert!(
        healing_total < passive_total,
        "across all seeds, self-healing must be strictly faster: {healing_total} vs {passive_total}"
    );
}

#[test]
fn rolling_chaos_is_deterministic_per_seed_and_mode() {
    for healing in [true, false] {
        let cfg = RollingChaosConfig::new(77, healing);
        let a = run_rolling(&cfg);
        let b = run_rolling(&cfg);
        assert_eq!(a.digest, b.digest, "healing={healing}: same seed diverged");
    }
}
