//! Failure-injection tests: lossy links, partitions plus churn, graceful vs
//! crash departures. "Robustness and survivability against registry failure
//! or disappearance" under degraded network conditions.

use sds_core::{ClientNode, QueryOptions, RegistryNode, ServiceNode};
use sds_integration::query_and_collect;
use sds_protocol::ModelId;
use sds_simnet::{secs, SimConfig};
use sds_workload::{Deployment, PopulationSpec, Scenario, ScenarioConfig};

fn lossy_config(lan_loss: f64, wan_loss: f64, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        lans: 3,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Uri,
            services: 12,
            queries: 12,
            generalization_rate: 0.0,
            seed,
        },
        seed,
        net: SimConfig { lan_loss, wan_loss, ..SimConfig::default() },
        ..Default::default()
    }
}

#[test]
fn discovery_survives_moderately_lossy_links() {
    // 5% loss on both scopes: periodic retries (probes, beacons, renewals)
    // make control state converge; individual queries may still fail.
    let mut s = Scenario::build(lossy_config(0.05, 0.05, 5));
    s.sim.run_until(secs(10));
    let mut successes = 0;
    let n = 20;
    for qi in 0..n {
        let payload = s.queries[qi % s.queries.len()].clone();
        let expected = s.expected_now(&payload);
        let got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        if expected.is_empty() || got.iter().any(|p| expected.contains(p)) {
            successes += 1;
        }
    }
    assert!(
        successes >= n * 7 / 10,
        "≥70% discovery success at 5% loss, got {successes}/{n}"
    );
}

#[test]
fn heavy_loss_degrades_but_does_not_wedge() {
    let mut s = Scenario::build(lossy_config(0.25, 0.25, 6));
    s.sim.run_until(secs(15));
    // Even at 25% loss nothing panics, queries complete (possibly empty),
    // and at least some succeed thanks to retry mechanisms.
    let mut successes = 0;
    for qi in 0..20 {
        let payload = s.queries[qi % s.queries.len()].clone();
        let expected = s.expected_now(&payload);
        let got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        if !expected.is_empty() && got.iter().any(|p| expected.contains(p)) {
            successes += 1;
        }
    }
    assert!(successes > 0, "some queries still succeed at 25% loss");
}

#[test]
fn graceful_deregistration_beats_lease_expiry() {
    let mut s = Scenario::build(ScenarioConfig {
        lans: 1,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Uri,
            services: 4,
            queries: 4,
            generalization_rate: 0.0,
            seed: 7,
        },
        seed: 7,
        ..Default::default()
    });
    s.sim.run_until(secs(2));
    let registry = s.registries[0];
    let initial = s
        .sim
        .handler::<RegistryNode>(registry)
        .unwrap()
        .engine()
        .store()
        .len();
    assert_eq!(initial, 4);

    // Service 0 leaves gracefully; service 1 crashes.
    let (leaver, _) = s.services[0];
    let (crasher, _) = s.services[1];
    s.sim.with_node::<ServiceNode>(leaver, |svc, ctx| svc.deregister_all(ctx));
    s.sim.crash_node(leaver);
    s.sim.crash_node(crasher);

    // Immediately after: the graceful leaver is gone, the crasher lingers
    // until its lease runs out.
    s.sim.run_until(secs(4));
    let mid = s.sim.handler::<RegistryNode>(registry).unwrap().engine().store().len();
    assert_eq!(mid, 3, "explicit Remove is immediate; the crashed advert remains");

    // After the lease window both are gone.
    s.sim.run_until(secs(40));
    let late = s.sim.handler::<RegistryNode>(registry).unwrap().engine().store().len();
    assert_eq!(late, 2, "leases clean up what dereg could not");
}

#[test]
fn discovery_works_end_to_end_on_a_64kbps_radio_lan() {
    // The whole stack on a tactical-radio-class medium: slower, but correct.
    let mut s = Scenario::build(ScenarioConfig {
        lans: 2,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Uri,
            services: 8,
            queries: 8,
            generalization_rate: 0.0,
            seed: 9,
        },
        seed: 9,
        net: SimConfig { lan_rate_kbps: 64, wan_rate_kbps: 64, ..SimConfig::default() },
        ..Default::default()
    });
    // Generous settling time: publishes serialize on the narrow medium.
    s.sim.run_until(secs(20));
    for qi in 0..4 {
        let payload = s.queries[qi].clone();
        let expected = s.expected_now(&payload);
        let got = query_and_collect(
            &mut s,
            qi,
            payload,
            QueryOptions { timeout: secs(8), ..Default::default() },
        );
        assert_eq!(
            sds_metrics::recall(&expected, &got),
            1.0,
            "query {qi} on 64 kbps: {expected:?} vs {got:?}"
        );
    }
}

#[test]
fn simultaneous_registry_and_service_churn_converges() {
    let mut s = Scenario::build(ScenarioConfig {
        lans: 3,
        deployment: Deployment::Federated { registries_per_lan: 2 },
        population: PopulationSpec {
            model: ModelId::Uri,
            services: 12,
            queries: 12,
            generalization_rate: 0.0,
            seed: 8,
        },
        seed: 8,
        ..Default::default()
    });
    s.sim.run_until(secs(5));
    // Bounce one registry per LAN and a third of the services.
    for li in 0..3 {
        let r = s.registries[li * 2];
        let down_at = secs(6 + li as u64);
        s.sim.schedule(down_at, sds_simnet::ControlAction::Crash(r));
        s.sim.schedule(down_at + secs(20), sds_simnet::ControlAction::Revive(r));
    }
    for i in (0..s.services.len()).step_by(3) {
        let (node, _) = s.services[i];
        s.sim.schedule(secs(8), sds_simnet::ControlAction::Crash(node));
        s.sim.schedule(secs(30), sds_simnet::ControlAction::Revive(node));
    }
    // Give failover, republish, and federation repair time to settle.
    s.sim.run_until(secs(120));
    for qi in 0..8 {
        let payload = s.queries[qi].clone();
        let expected = s.expected_now(&payload);
        let got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        let recall = sds_metrics::recall(&expected, &got);
        assert_eq!(recall, 1.0, "query {qi} after combined churn: {expected:?} vs {got:?}");
    }
    // Clients ended up attached somewhere sane.
    for &c in &s.clients {
        assert!(s.sim.handler::<ClientNode>(c).unwrap().home_registry().is_some());
    }
}

#[test]
fn static_client_reattaches_after_asymmetric_fault_without_livelock() {
    // Asymmetric WAN fault: the client's pings reach its statically
    // configured registry, but every reply back is lost. The client must
    // conclude the registry is gone, keep re-attaching under backoff (no
    // livelock, bounded traffic), and stick once the path heals.
    use sds_core::{
        AttachConfig, Bootstrap, ClientConfig, RegistryConfig, RetryPolicy, ServiceConfig,
    };
    use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
    use sds_simnet::{FaultProfile, Sim, Topology};

    let mut topo = Topology::new();
    let lan_a = topo.add_lan();
    let lan_b = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 42);
    let registry =
        sim.add_node(lan_b, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let svc_attach = AttachConfig { bootstrap: Bootstrap::Static(registry), ..Default::default() };
    sim.add_node(
        lan_b,
        Box::new(ServiceNode::new(
            ServiceConfig { attach: svc_attach, ..Default::default() },
            vec![Description::Uri("urn:sensor/radar".into())],
            None,
        )),
    );
    let client_cfg = ClientConfig {
        attach: AttachConfig {
            bootstrap: Bootstrap::Static(registry),
            retry: RetryPolicy::standard(),
            ..Default::default()
        },
        fallback_query: false,
        ..Default::default()
    };
    let client = sim.add_node(lan_a, Box::new(ClientNode::new(client_cfg)));

    sim.run_until(secs(3));
    assert_eq!(
        sim.handler::<ClientNode>(client).unwrap().home_registry(),
        Some(registry),
        "client attaches to its static registry"
    );

    // One direction dies: everything from the registry's LAN back to the
    // client's LAN is lost; the forward path stays clean.
    sim.set_wan_pair_faults(lan_b, lan_a, FaultProfile { loss: 1.0, ..FaultProfile::default() });
    let msgs_before = sim.stats().total_messages();
    sim.run_until(secs(63));
    assert_eq!(
        sim.handler::<ClientNode>(client).unwrap().home_registry(),
        None,
        "unanswered pings must detach the client"
    );
    // No livelock: 60 s of outage with capped-exponential re-attach must
    // stay a trickle (pings every 5 s + backed-off re-attach rounds + the
    // service's renew traffic), nowhere near a tight retry loop.
    let msgs_during = sim.stats().total_messages() - msgs_before;
    assert!(
        msgs_during < 120,
        "bounded re-attach traffic during the outage, got {msgs_during} messages"
    );

    // Heal: the next backed-off re-attach sticks.
    sim.set_wan_pair_faults(lan_b, lan_a, FaultProfile::default());
    sim.run_until(secs(95));
    assert_eq!(
        sim.handler::<ClientNode>(client).unwrap().home_registry(),
        Some(registry),
        "client re-attaches after the path heals"
    );
    // And the attachment is functional: a query resolves the service.
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(
            ctx,
            QueryPayload::Uri("urn:sensor/radar".into()),
            QueryOptions::default(),
        );
    });
    sim.run_until(secs(100));
    let completed = &sim.handler::<ClientNode>(client).unwrap().completed;
    assert!(
        !completed.last().unwrap().hits.is_empty(),
        "post-heal query finds the service through the re-attached registry"
    );
}
