//! The multi-seed chaos-soak runner, shared between the convergence soak
//! (`tests/chaos_soak.rs`) and the engine-equivalence golden-fingerprint
//! test (`tests/engine_equivalence.rs`).
//!
//! One seed drives a deterministic schedule of crashes/revives (ChurnPlan)
//! and per-scope fault windows — loss, duplication, reordering, frame
//! corruption through the real codec (FaultPlan + corrupting hook) — on the
//! battlefield scenario, with queries flowing throughout. After the last
//! fault heals and the last churn event fires, the system gets a settle
//! window, then every convergence invariant is evaluated and the full
//! metrics transcript is folded into one digest. The digest is a function of
//! observable behaviour only (schedules, traffic counters, query results,
//! store sizes), so any engine change that claims to be observably free must
//! reproduce it bit-for-bit.

use std::fmt::Write as _;

use sds_core::{ClientNode, QueryOptions, RegistryNode, SyncMode};
use sds_metrics::{fingerprint, recall, InvariantReport};
use sds_protocol::ModelId;
use sds_simnet::{secs, NodeId, PartitionPlan};
use sds_workload::{
    corrupting_hook, ChurnPlan, Deployment, FaultPlan, FaultSeverity, PopulationSpec, Scenario,
    ScenarioConfig,
};

use crate::query_and_collect;

/// Purge cadence of the default registry config, used as the slack when
/// checking that expired leases were reaped.
const PURGE_SLACK: u64 = 2_000;

pub struct SoakOutcome {
    pub report: InvariantReport,
    pub digest: u64,
}

/// Runs the soak with the default registry configuration (anti-entropy
/// replication, like every production-shaped scenario).
pub fn run_soak(seed: u64) -> SoakOutcome {
    run_soak_with(seed, SyncMode::default())
}

/// Runs the soak with an explicit replication plane. `SyncMode::Legacy`
/// reproduces the historical wire behaviour byte-for-byte, which is what the
/// golden-fingerprint equivalence tests pin.
pub fn run_soak_with(seed: u64, sync_mode: SyncMode) -> SoakOutcome {
    run_soak_configured(seed, sync_mode, PartitionPlan::Single, 1, DataPlane::default())
}

/// Runs the soak on the partitioned engine (one domain per LAN) with the
/// given worker-thread count. The partitioned engine's event interleaving
/// differs from the sequential engine's, so its digests form their *own*
/// golden family — but within that family the digest must be identical for
/// every `workers` value, which is the worker-count-invariance guarantee
/// `engine_equivalence.rs` pins.
pub fn run_soak_partitioned(seed: u64, workers: usize) -> SoakOutcome {
    run_soak_configured(seed, SyncMode::Legacy, PartitionPlan::PerLan, workers, DataPlane::default())
}

/// The registry data-plane shape the soak runs with: shard count and
/// `data_plane_workers` thread count. Both are contracted to be observable
/// no-ops, so a soak digest must be identical across every `DataPlane` —
/// `tests/multiworker_registry.rs` pins exactly that against the default
/// plane's digest.
#[derive(Clone, Copy, Debug)]
pub struct DataPlane {
    pub shard_count: usize,
    pub workers: usize,
}

impl Default for DataPlane {
    fn default() -> Self {
        Self { shard_count: 1, workers: 1 }
    }
}

/// Runs the soak with a sharded, multi-worker registry data plane on the
/// default replication plane — the end-to-end "multi-worker registry
/// scenario": every registry node evaluates broadcast scans and batch
/// queues across `workers` scoped threads inside its handler.
pub fn run_soak_data_plane(seed: u64, plane: DataPlane) -> SoakOutcome {
    run_soak_configured(seed, SyncMode::default(), PartitionPlan::Single, 1, plane)
}

fn run_soak_configured(
    seed: u64,
    sync_mode: SyncMode,
    partition: PartitionPlan,
    workers: usize,
    data_plane: DataPlane,
) -> SoakOutcome {
    let mut cfg = ScenarioConfig {
        lans: 3,
        clients_per_lan: 1,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 10,
            queries: 8,
            generalization_rate: 0.5,
            seed,
        },
        seed,
        partition,
        workers,
        ..Default::default()
    };
    cfg.registry.sync_mode = sync_mode;
    cfg.registry.shard_count = data_plane.shard_count;
    cfg.registry.data_plane_workers = data_plane.workers;
    // Keep the duplicate-counting invariant sharp: unicast queries have
    // exactly one legitimate responder (the home registry), so any second
    // counted response is a fault-injection duplicate leaking through.
    cfg.client.fallback_query = false;
    let mut s = Scenario::build(cfg);
    // The partitioned engine needs one corruptor instance per domain (the
    // hook captures nothing, so every instance draws identically from its
    // domain's fault stream); the factory form covers both engines.
    s.sim.set_corruptor_factory(|| Box::new(corrupting_hook()));

    let horizon = secs(60);
    // Churn services and the non-seed registries (the seed registry is the
    // federation rendezvous; everything else may come and go).
    let mut churn_targets: Vec<NodeId> = s.services.iter().map(|&(n, _)| n).collect();
    churn_targets.extend(s.registries.iter().skip(1).copied());
    let mut churn = ChurnPlan::exponential(&churn_targets, 25_000.0, 8_000.0, horizon, seed);
    // Registries must end the window up: a LAN whose only registry stays
    // dead leaves its services legitimately unreachable (availability loss,
    // not a convergence violation — the invariants target the healed state).
    for &r in s.registries.iter().skip(1) {
        if !churn.is_up_at(r, horizon) {
            churn.events.push(sds_workload::churn::ChurnEvent { at: horizon, node: r, up: true });
        }
    }
    churn.events.sort_by_key(|e| (e.at, e.node));
    churn.apply(&mut s.sim);
    let faults = FaultPlan::exponential(
        &s.lans,
        true,
        9_000.0,
        3_500.0,
        FaultSeverity::default(),
        horizon,
        seed,
    );
    faults.apply(&mut s.sim);

    // Traffic during the chaos window: every client queries every ~5 s.
    let mut qi = 0usize;
    for t in (5..=60).step_by(5) {
        s.sim.run_until(secs(t));
        for ci in 0..s.clients.len() {
            s.issue(ci, qi, QueryOptions::default());
            qi += 1;
        }
    }

    // Heal: after this instant no further faults or churn events fire.
    let last_churn = churn.events.last().map(|e| e.at).unwrap_or(0);
    let chaos_end = faults.healed_by().max(last_churn).max(s.sim.now());
    // Settle: longer than lease expiry (30 s) + failover + republish, so
    // stale adverts purge and revived services are re-discoverable.
    s.sim.run_until(chaos_end + secs(60));

    let mut report = InvariantReport::new();
    let mut digest_src = String::new();
    let _ = writeln!(
        digest_src,
        "seed={seed} churn_events={} fault_events={} healed_by={}",
        churn.len(),
        faults.len(),
        faults.healed_by()
    );

    // Faults must actually have been injected, or the soak proves nothing.
    {
        let st = s.sim.stats();
        report.check("faults-injected", st.fault_injections() > 0, || {
            "fault plan injected nothing".into()
        });
        report.check("corruption-exercised", st.corrupted_messages > 0, || {
            "no frame ever went through the corruption hook".into()
        });
        let _ = writeln!(
            digest_src,
            "dup={} corrupt={} corrupt_drop={} reorder={} dropped={} lan_msgs={} wan_msgs={}",
            st.duplicated_messages,
            st.corrupted_messages,
            st.corrupt_dropped_messages,
            st.reorder_delayed_messages,
            st.dropped_messages,
            st.lan_messages,
            st.wan_messages,
        );
    }

    // Post-heal discoverability: oracle recall 1.0 for every workload query.
    for qi in 0..s.queries.len() {
        let payload = s.queries[qi].clone();
        let expected = s.expected_now(&payload);
        let mut got = query_and_collect(&mut s, qi, payload, QueryOptions::default());
        let r = recall(&expected, &got);
        report.check("post-heal-recall", r == 1.0, || {
            format!("query {qi}: recall {r}, expected {expected:?} got {got:?}")
        });
        // No provider may appear twice in one result: stale incarnations
        // must have aged out and duplicates must have been merged.
        got.sort_unstable();
        let unique = {
            let mut g = got.clone();
            g.dedup();
            g.len()
        };
        report.check("no-double-provider", unique == got.len(), || {
            format!("query {qi}: providers listed twice in {got:?}")
        });
        let _ = writeln!(digest_src, "q{qi} expected={expected:?} got={got:?}");
    }

    // No zombie leases: in every live registry, nothing outlived its lease
    // beyond the purge cadence.
    let now = s.sim.now();
    for &r in &s.registries {
        if !s.sim.is_alive(r) {
            continue;
        }
        let node = s.sim.handler::<RegistryNode>(r).unwrap();
        for stored in node.engine().store().iter() {
            report.check(
                "no-expired-lease",
                stored.lease_until + PURGE_SLACK > now,
                || {
                    format!(
                        "registry {r}: advert {:?} lease_until {} at now {now}",
                        stored.advert.id, stored.lease_until
                    )
                },
            );
        }
        let _ = writeln!(digest_src, "registry {r} store={}", node.engine().store().len());
    }

    // No double counting: a unicast query has exactly one legitimate
    // responder, however many duplicated copies of its response arrived.
    for &c in &s.clients {
        let client = s.sim.handler::<ClientNode>(c).unwrap();
        for done in &client.completed {
            report.check("responses-counted-once", done.responses_received <= 1, || {
                format!(
                    "client {c} query {} counted {} responses",
                    done.seq, done.responses_received
                )
            });
        }
        let _ = writeln!(digest_src, "client {c} completed={}", client.completed.len());
    }

    SoakOutcome { report, digest: fingerprint(&digest_src) }
}
