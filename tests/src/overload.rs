//! The multi-seed overload-soak runner (`tests/overload_soak.rs`).
//!
//! One seed drives a deterministic flash crowd against capacity-bounded
//! registries running the full overload layer: modeled ingress budgets
//! ([`NodeCapacity`]), the admission/backpressure ladder ([`OverloadPolicy`]),
//! `Busy`-honoring clients with jittered backoff, and providers that stretch
//! renewal cadence under pressure. The storm is short relative to the client
//! retry budget, so backpressure is *transient*: every nacked query has
//! room to re-send into the post-storm calm. Invariants per seed:
//!
//! * **Backpressure resolves**: every query that absorbed a `Busy` nack is
//!   eventually answered by a successful retry (no nack is a death sentence);
//! * **Leases outlive shedding**: no advert is ever purged — renewals are
//!   never software-shed while query shedding suffices, and physically
//!   dropped renewals are healed by provider ack-retries;
//! * **Shedding really happened**: the storm must drive the busy band, or
//!   the soak proves nothing;
//! * **Determinism**: the same seed reproduces a byte-identical metrics
//!   fingerprint (ledger counters and latency percentiles included).

use std::fmt::Write as _;

use sds_core::{
    OverloadPolicy, QueryMode, QueryOptions, RegistryNode, RetryPolicy, ServiceNode,
};
use sds_metrics::{InvariantReport, OverloadLedger};
use sds_protocol::ModelId;
use sds_simnet::{secs, NodeCapacity, PartitionPlan, SimTime};
use sds_workload::{Deployment, OverloadPlan, PopulationSpec, Scenario, ScenarioConfig};

/// Attach, publish, and one anti-entropy exchange finish well inside this;
/// capacity install and the demand plan start here.
const WARMUP: SimTime = 12_250;
/// Plan-relative storm window: ~6 s of 10× demand — long enough for the
/// utilization EWMA to integrate into the busy band, short enough that the
/// client retry budget (~9 s of backoff) outlives it.
const STORM: (SimTime, SimTime) = (5_000, 11_000);
const HORIZON: SimTime = 15_000;

pub struct OverloadSoakOutcome {
    pub report: InvariantReport,
    /// Deterministic one-line digest: the run's [`OverloadLedger`]
    /// fingerprint plus mechanism counters.
    pub fingerprint: String,
}

pub fn run_overload_soak(seed: u64) -> OverloadSoakOutcome {
    let mut cfg = ScenarioConfig {
        lans: 3,
        clients_per_lan: 30,
        deployment: Deployment::Federated { registries_per_lan: 1 },
        population: PopulationSpec {
            model: ModelId::Semantic,
            services: 18,
            queries: 24,
            generalization_rate: 0.4,
            seed,
        },
        seed,
        partition: PartitionPlan::PerLan,
        workers: 2,
        // Generous retry budget: up to 6 re-sends spread over ~9 s, so even
        // a storm-start nack has post-storm calm left to land in.
        retry: Some(RetryPolicy {
            max_retries: 6,
            base_backoff: 400,
            max_backoff: secs(2),
            jitter: 250,
        }),
        ..Default::default()
    };
    cfg.registry.overload = OverloadPolicy {
        // The soak's open-loop storm parks the EWMA far above 100%; renewals
        // must stay priced out of shedding (that is the invariant under test).
        busy_renewal_pct: 1_000,
        retry_jitter: 380,
        ..OverloadPolicy::standard(30)
    };
    // Synchronized client/service ping waves would contend with the bounded
    // ingress queue; registry beacons cover home liveness.
    cfg.client.attach.ping_interval = 0;
    cfg.service.attach.ping_interval = 0;
    cfg.client.hedge_after_busy = 2;
    let mut s = Scenario::build(cfg);

    s.sim.run_until(WARMUP);
    let registries = s.registries.clone();
    for &r in &registries {
        s.sim.set_node_capacity(r, Some(NodeCapacity { ops_per_tick: 1, queue_limit: 32 }));
    }

    // 10 queries/LAN per ~1 s event at baseline, 10x that in the storm —
    // each storm burst overflows the 32-slot ingress queue ~3x.
    let plan =
        OverloadPlan::flash_crowd(10 * s.lans.len() as u32, 10, 997, STORM.0, STORM.1, HORIZON, seed);
    let opts = QueryOptions {
        max_responses: Some(8),
        ttl: 0,
        timeout: secs(12),
        mode: QueryMode::Unicast,
    };
    let (lans, per_lan) = (s.lans.len(), s.clients.len() / s.lans.len());
    let mut cursor = 0usize;
    for i in 0..plan.events.len() {
        let ev = plan.events[i];
        s.sim.run_until(WARMUP + ev.at);
        for _ in 0..ev.queries {
            // Interleave across LANs so each burst loads every registry.
            let ci = (cursor % lans) * per_lan + (cursor / lans) % per_lan;
            s.issue(ci, cursor, opts.clone());
            cursor += 1;
        }
    }
    // Let every outstanding retry resolve: last issue + client budget.
    s.sim.run_until(WARMUP + HORIZON + opts.timeout + secs(2));

    let mut report = InvariantReport::new();
    let mut ledger = OverloadLedger::default();
    let mut nacked_unanswered = 0u64;
    for ci in 0..s.clients.len() {
        for cq in s.completed(ci) {
            ledger.record(
                cq.first_response_at.is_some(),
                cq.first_response_at.map(|t| t - cq.sent_at),
                cq.busy_nacks,
                cq.retries,
            );
            if cq.busy_nacks > 0 && cq.first_response_at.is_none() {
                nacked_unanswered += 1;
            }
        }
    }
    report.check("offered-everything", ledger.offered == plan.total_queries(), || {
        format!("completed {} of {} offered", ledger.offered, plan.total_queries())
    });
    report.check("busy-band-engaged", ledger.busy_nacks_total > 0, || {
        "the storm never drove the busy band; the soak proves nothing".into()
    });
    report.check("every-nack-resolves", nacked_unanswered == 0, || {
        format!("{nacked_unanswered} busy-nacked queries were never answered")
    });

    let (mut purged, mut renewal_nacks, mut busy, mut deduped) = (0u64, 0u64, 0u64, 0u64);
    for &r in &registries {
        let st = s.sim.handler::<RegistryNode>(r).expect("registry handler").stats;
        purged += st.adverts_purged;
        renewal_nacks += st.renewal_busy_nacks;
        busy += st.busy_nacks;
        deduped += st.retries_deduped;
    }
    let mut service_nacks = 0u64;
    for &(n, _) in &s.services {
        service_nacks += s.sim.handler::<ServiceNode>(n).expect("service handler").stats.busy_nacks;
    }
    report.check("renewals-never-shed", renewal_nacks == 0 && service_nacks == 0, || {
        format!("{renewal_nacks} renewal-class nacks ({service_nacks} seen by providers)")
    });
    report.check("no-lease-lost", purged == 0, || {
        format!("{purged} adverts purged: a lease expired under shedding")
    });

    let net = s.sim.stats();
    let mut fingerprint = String::new();
    let _ = write!(
        fingerprint,
        "seed={seed} {} reg_busy={busy} deduped={deduped} purged={purged} \
         cap_dropped={} cap_deferred={}",
        ledger.fingerprint_line(),
        net.capacity_dropped_messages,
        net.capacity_deferred_messages,
    );
    OverloadSoakOutcome { report, fingerprint }
}
