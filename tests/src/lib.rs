//! Shared helpers for the cross-crate integration tests.

use sds_core::{ClientNode, QueryOptions};
use sds_protocol::QueryPayload;
use sds_simnet::NodeId;
use sds_workload::Scenario;

/// Issues `payload` from scenario client `ci`, runs the simulation until the
/// query completes, and returns the hit providers.
pub fn query_and_collect(
    s: &mut Scenario,
    ci: usize,
    payload: QueryPayload,
    options: QueryOptions,
) -> Vec<NodeId> {
    let client = s.clients[ci % s.clients.len()];
    let before = s.sim.handler::<ClientNode>(client).unwrap().completed.len();
    let deadline = s.sim.now() + options.timeout + 1_000;
    s.sim.with_node::<ClientNode>(client, |c, ctx| {
        c.issue_query(ctx, payload, options);
    });
    s.sim.run_until(deadline);
    s.sim.handler::<ClientNode>(client).unwrap().completed[before]
        .hits
        .iter()
        .map(|h| h.advert.provider)
        .collect()
}

pub mod overload;
pub mod soak;
