//! Registry support services (paper §4.3): vocabulary mediation and service
//! composition.
//!
//! "To reduce the load on limited devices, service selection, mediator
//! selection, composition and reasoning support in registries may be
//! needed."
//!
//! Part 1 — composition: the client wants a `ThreatAssessment` from an
//! `AreaOfInterest`, which no single service provides; the registry plans a
//! radar → fusion → assessment chain over the protocol.
//!
//! Part 2 — mediation: two coalition partners model the same domain with
//! different ontologies; a `ClassMapping` (the kind of ontology-mapping
//! artifact registries host, §4.6) lets partner A's request match partner
//! B's profiles.
//!
//! Run with: `cargo run -p semdisc-examples --bin mediation_composition`

use std::sync::Arc;

use sds_core::{ClientConfig, ClientNode, RegistryConfig, RegistryNode, ServiceConfig, ServiceNode};
use sds_protocol::{Description, DiscoveryMessage};
use sds_semantic::{
    ClassMapping, Degree, Mediator, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex,
};
use sds_simnet::{secs, Sim, SimConfig, Topology};

fn composition_demo() {
    println!("== composition: planning a service chain at the registry ==");
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);
    let aoi = o.class("AreaOfInterest", &[thing]);
    let raw = o.class("RawSensorData", &[thing]);
    let radar_raw = o.class("RadarRaw", &[raw]);
    let track = o.class("Track", &[thing]);
    let threat = o.class("ThreatAssessment", &[thing]);
    let svc = o.class("Service", &[thing]);
    let idx = Arc::new(SubsumptionIndex::build(&o));

    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 3);
    sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), Some(idx.clone()))));
    let chain_specs: [(&str, &[_], &[_]); 3] = [
        ("radar", &[aoi][..], &[radar_raw][..]),
        ("fusion", &[raw][..], &[track][..]),
        ("assessment", &[track][..], &[threat][..]),
    ];
    for (name, inputs, outputs) in chain_specs {
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Semantic(
                    ServiceProfile::new(name, svc).with_inputs(inputs).with_outputs(outputs),
                )],
                Some(idx.clone()),
            )),
        );
    }
    let client = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));
    sim.with_node::<ClientNode>(client, |c, ctx| {
        c.request_composition(
            ctx,
            ServiceRequest::default().with_outputs(&[threat]).with_provided_inputs(&[aoi]),
            5,
        );
    });
    sim.run_until(secs(3));
    let plan = &sim.handler::<ClientNode>(client).unwrap().compositions[0];
    assert!(plan.found);
    println!("requested: ThreatAssessment, holding only an AreaOfInterest");
    println!("planned chain ({} steps):", plan.chain.len());
    for (i, advert) in plan.chain.iter().enumerate() {
        let Description::Semantic(p) = &advert.description else { unreachable!() };
        println!("  {}. {} (provider {})", i + 1, p.name, advert.provider);
    }
}

fn mediation_demo() {
    println!("\n== mediation: matching across coalition vocabularies ==");
    // Partner A: "UAV" vocabulary.
    let mut a = Ontology::new();
    let a_thing = a.class("A:Thing", &[]);
    let a_uav = a.class("A:UAVService", &[a_thing]);
    let a_recon = a.class("A:ReconUAV", &[a_uav]);
    let a_imagery = a.class("A:Imagery", &[a_thing]);

    // Partner B: "Drone" vocabulary, organized differently.
    let mut b = Ontology::new();
    let b_thing = b.class("B:Thing", &[]);
    let b_svc = b.class("B:Service", &[b_thing]);
    let b_drone = b.class("B:DroneService", &[b_svc]);
    let b_survey = b.class("B:SurveyDrone", &[b_drone]);
    let b_photo = b.class("B:Photo", &[b_thing]);

    // The alignment artifact both sides agreed on.
    let mapping = ClassMapping::new()
        .with(a_uav, b_drone)
        .with(a_recon, b_survey)
        .with(a_imagery, b_photo);

    let idx_b = SubsumptionIndex::build(&b);
    let mediator = Mediator::new(&mapping, &idx_b);

    // B's local profile, A's request in A's own words.
    let profile = ServiceProfile::new("survey-drone-7", b_survey).with_outputs(&[b_photo]);
    let request = ServiceRequest::for_category(a_uav).with_outputs(&[a_imagery]);

    let verdict = mediator.mediated_match(&request, &profile).expect("fully aligned");
    println!("A asks (A-vocabulary): any A:UAVService producing A:Imagery");
    println!("B offers (B-vocabulary): survey-drone-7 — B:SurveyDrone producing B:Photo");
    println!("mediated verdict: {:?} (distance {})", verdict.degree, verdict.distance);
    assert_eq!(verdict.degree, Degree::PlugIn);

    // An unmapped concept is a mediation *miss*, reported as such — the
    // "additional translation or mediation service may be needed" signal.
    let unmapped = ServiceRequest::for_category(a_thing);
    assert!(mediator.mediated_match(&unmapped, &profile).is_none());
    println!("request using the unmapped concept A:Thing → mediation reports a gap (None)");
}

fn main() {
    composition_demo();
    mediation_demo();
}
