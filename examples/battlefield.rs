//! The network-centric battlefield scenario (MILCOM companion paper).
//!
//! Demonstrates the *layered* stack: three kinds of devices share one
//! discovery infrastructure with different description models —
//!
//! * a legacy Tactical-Data-Link-style broadcaster advertising a bare
//!   pre-agreed URI ("services not relying on Web Services standards as
//!   their transport should be able to use the service discovery
//!   infrastructure");
//! * a mid-tier chat server using a name/type/attribute template;
//! * sensor services with full semantic profiles and QoS attributes,
//!   selected with subsumption *and* a QoS floor.
//!
//! Run with: `cargo run -p semdisc-examples --bin battlefield`

use std::sync::Arc;

use sds_core::{ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig, ServiceNode};
use sds_protocol::{
    Codec, Compression, Description, DescriptionTemplate, DiscoveryMessage, QueryPayload, WireSize,
};
use sds_semantic::{QosKey, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::{secs, Sim, SimConfig, Topology};
use sds_workload::battlefield;

fn main() {
    let (ontology, c) = battlefield();
    let index = Arc::new(SubsumptionIndex::build(&ontology));

    // HQ LAN and a forward-deployed unit LAN over a narrow WAN link.
    let mut topology = Topology::new();
    let hq = topology.add_lan();
    let forward = topology.add_lan();
    let mut sim: Sim<DiscoveryMessage> =
        Sim::new(SimConfig { wan_latency: 60, wan_jitter: 20, ..Default::default() }, topology, 99);

    let hq_reg =
        sim.add_node(hq, Box::new(RegistryNode::new(RegistryConfig::default(), Some(index.clone()))));
    let _fwd_reg = sim.add_node(
        forward,
        Box::new(RegistryNode::new(
            RegistryConfig { seeds: vec![hq_reg], ..Default::default() },
            Some(index.clone()),
        )),
    );

    // Heavyweight semantic sensors at HQ, with QoS attributes.
    for (name, accuracy) in [("long-range-radar", 0.95), ("coastal-radar", 0.70)] {
        let profile = ServiceProfile::new(name, c.radar_service)
            .with_outputs(&[c.radar_data, c.air_track])
            .with_inputs(&[c.area_of_interest])
            .with_qos(QosKey::Accuracy, accuracy)
            .with_qos(QosKey::CoverageM, 120_000.0);
        sim.add_node(
            hq,
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Semantic(profile)],
                Some(index.clone()),
            )),
        );
    }
    // A legacy TDL broadcaster on the forward LAN: URI-only description.
    sim.add_node(
        forward,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:tdl:link16:surveillance".into())],
            None, // a primitive device: no semantic evaluator at all
        )),
    );
    // A chat server described by template.
    sim.add_node(
        forward,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Template(DescriptionTemplate {
                name: Some("coy-chat".into()),
                type_uri: Some("urn:svc:ChatService".into()),
                attrs: vec![("net".into(), "coy-alpha".into())],
            })],
            None,
        )),
    );

    let warfighter = sim.add_node(forward, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(3));

    // One infrastructure, three query models.
    sim.with_node::<ClientNode>(warfighter, |cl, ctx| {
        // Semantic + QoS floor: only the 0.95-accuracy radar qualifies.
        cl.issue_query(
            ctx,
            QueryPayload::Semantic(
                ServiceRequest::for_category(c.surveillance)
                    .with_provided_inputs(&[c.area_of_interest])
                    .with_qos(QosKey::Accuracy, 0.9),
            ),
            QueryOptions::default(),
        );
        // Legacy URI lookup.
        cl.issue_query(
            ctx,
            QueryPayload::Uri("urn:tdl:link16:surveillance".into()),
            QueryOptions::default(),
        );
        // Template lookup by attribute.
        cl.issue_query(
            ctx,
            QueryPayload::Template(DescriptionTemplate {
                attrs: vec![("net".into(), "coy-alpha".into())],
                ..Default::default()
            }),
            QueryOptions::default(),
        );
    });
    sim.run_until(secs(9));

    let client = sim.handler::<ClientNode>(warfighter).unwrap();
    let names: Vec<String> = client.completed[0]
        .hits
        .iter()
        .map(|h| match &h.advert.description {
            Description::Semantic(p) => p.name.clone(),
            _ => unreachable!(),
        })
        .collect();
    println!("surveillance with accuracy ≥ 0.9: {names:?}");
    assert_eq!(names, vec!["long-range-radar"], "QoS filter applied at the registry");
    println!("TDL hits: {}", client.completed[1].hits.len());
    assert_eq!(client.completed[1].hits.len(), 1);
    println!("chat hits: {}", client.completed[2].hits.len());
    assert_eq!(client.completed[2].hits.len(), 1);

    // The bandwidth story: semantic descriptions are big; binary XML helps.
    let radar_desc = Description::Semantic(
        ServiceProfile::new("long-range-radar", c.radar_service)
            .with_outputs(&[c.radar_data, c.air_track])
            .with_inputs(&[c.area_of_interest])
            .with_qos(QosKey::Accuracy, 0.95),
    );
    let uri_desc = Description::Uri("urn:tdl:link16:surveillance".into());
    println!(
        "\ndescription body sizes: semantic {} B vs URI {} B; semantic over binary XML: {} B",
        radar_desc.body_size(),
        uri_desc.body_size(),
        Codec::new(Compression::BinaryXml).message_size(&DiscoveryMessage::publishing(
            sds_protocol::PublishOp::Publish {
                advert: sds_protocol::Advertisement {
                    id: sds_protocol::Uuid(1),
                    provider: warfighter,
                    description: radar_desc,
                    version: 1
                },
                lease_ms: 30_000
            }
        )),
    );
    println!(
        "traffic so far: LAN {} B, WAN {} B",
        sim.stats().lan_bytes,
        sim.stats().wan_bytes
    );
}
