//! Registry-network dynamics: federation bootstrap, WAN partition,
//! healing, and gateway election — the paper's §4.5/§4.7/§4.9 machinery
//! observed end to end.
//!
//! Run with: `cargo run -p semdisc-examples --bin federation_failover`

use sds_core::{
    ClientConfig, ClientNode, QueryMode, QueryOptions, RegistryConfig, RegistryNode,
    ServiceConfig, ServiceNode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_simnet::{secs, ControlAction, Sim, SimConfig, Topology};

fn main() {
    // Three LANs; LAN 0 runs TWO registries (gateway election applies).
    let mut topology = Topology::new();
    let lan0 = topology.add_lan();
    let lan1 = topology.add_lan();
    let lan2 = topology.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topology, 5);

    let r0 = sim.add_node(lan0, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let r1 = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r0], ..Default::default() }, None)),
    );
    let r2 = sim.add_node(
        lan2,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r0], ..Default::default() }, None)),
    );
    let r0b = sim.add_node(
        lan0,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r1], ..Default::default() }, None)),
    );

    let _far_service = sim.add_node(
        lan2,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:weather".into())],
            None,
        )),
    );
    let client = sim.add_node(lan0, Box::new(ClientNode::new(ClientConfig::default())));

    // Phase 1: bootstrap. Watch the federation form from two seeds.
    sim.run_until(secs(40));
    for (name, r) in [("r0", r0), ("r1", r1), ("r2", r2), ("r0b", r0b)] {
        let reg = sim.handler::<RegistryNode>(r).unwrap();
        println!(
            "{name}: {} WAN peers, {} co-located registries",
            reg.peer_ids().len(),
            reg.local_registry_ids().len()
        );
    }

    // Phase 2: discovery across the federation (multicast query exercises
    // gateway election on LAN 0 — only one registry forwards to the WAN).
    sim.with_node::<ClientNode>(client, |cl, ctx| {
        cl.issue_query(
            ctx,
            QueryPayload::Uri("urn:svc:weather".into()),
            QueryOptions { mode: QueryMode::MulticastLan, ..Default::default() },
        );
    });
    sim.run_until(secs(46));
    let hits = sim.handler::<ClientNode>(client).unwrap().completed[0].hits.len();
    println!("\nweather service found across 2 WAN hops: {hits} hit(s)");
    assert_eq!(hits, 1);
    let dup = sim.handler::<RegistryNode>(r2).unwrap().stats.duplicate_queries_dropped;
    println!("duplicate WAN queries dropped at r2 (election active): {dup}");

    // Phase 3: the WAN partitions LAN 2 away. The anti-entropy plane has
    // already replicated the weather advert to LAN 0's registries, so
    // discovery *survives* the cut — the replica answers locally.
    println!("\n-- WAN partition: {{lan0, lan1}} | {{lan2}} at t=46s --");
    sim.schedule(secs(46), ControlAction::Partition(vec![vec![lan0, lan1], vec![lan2]]));
    sim.run_until(secs(50));
    sim.with_node::<ClientNode>(client, |cl, ctx| {
        cl.issue_query(ctx, QueryPayload::Uri("urn:svc:weather".into()), QueryOptions::default());
    });
    sim.run_until(secs(56));
    let during = sim.handler::<ClientNode>(client).unwrap().completed[1].hits.len();
    println!("during partition (replica answers): {during} hit(s)");
    assert_eq!(during, 1, "the replicated advert keeps the service discoverable");

    // Phase 3b: but the replica is *soft state* — no renewal crosses the
    // partition, so its lease runs out and the stale answer dies with it.
    sim.run_until(secs(82));
    sim.with_node::<ClientNode>(client, |cl, ctx| {
        cl.issue_query(ctx, QueryPayload::Uri("urn:svc:weather".into()), QueryOptions::default());
    });
    sim.run_until(secs(88));
    let expired = sim.handler::<ClientNode>(client).unwrap().completed[2].hits.len();
    println!("after the replica's lease expires: {expired} hit(s)");
    assert_eq!(expired, 0, "leases bound how long a partitioned replica may answer");

    println!("-- partition heals at t=90s --");
    sim.schedule(secs(90), ControlAction::HealPartition);
    sim.run_until(secs(140)); // seed retry + peer pings + sync rounds rebuild the overlay
    sim.with_node::<ClientNode>(client, |cl, ctx| {
        cl.issue_query(ctx, QueryPayload::Uri("urn:svc:weather".into()), QueryOptions::default());
    });
    sim.run_until(secs(146));
    let after = sim.handler::<ClientNode>(client).unwrap().completed[3].hits.len();
    println!("after healing: {after} hit(s)");
    assert_eq!(after, 1, "the registry network reconnects and discovery resumes");

    println!(
        "\ntotals: {} msgs LAN / {} msgs WAN, {} dropped",
        sim.stats().lan_messages,
        sim.stats().wan_messages,
        sim.stats().dropped_messages
    );
}
