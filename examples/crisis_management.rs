//! The paper's §1 motivating scenario: crisis management.
//!
//! "An example of a dynamic environment could be a crisis management
//! scenario where members from several agencies, potentially at different
//! locations, have to cooperate … These members carry with them various
//! devices that spontaneously form a network where application layer
//! services are offered."
//!
//! Three agency LANs (medical, fire, police) federate their registries; a
//! police commander discovers *any medical service* semantically across
//! agency boundaries, fetches the shared ontology in-band (no Internet
//! assumed), and the system keeps working when the fire agency's registry
//! vehicle is destroyed mid-operation.
//!
//! Run with: `cargo run -p semdisc-examples --bin crisis_management`

use std::sync::Arc;

use sds_core::{ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig, ServiceNode};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_semantic::{Artifact, ArtifactId, ArtifactKind, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::{secs, Sim, SimConfig, Topology};
use sds_workload::crisis;

fn main() {
    let (ontology, c) = crisis();
    let index = Arc::new(SubsumptionIndex::build(&ontology));

    // Three agency LANs joined over a tactical WAN.
    let mut topology = Topology::new();
    let medical_lan = topology.add_lan();
    let fire_lan = topology.add_lan();
    let police_lan = topology.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topology, 7);

    // One registry per agency; the medical registry seeds the federation and
    // hosts the shared crisis ontology for disconnected clients.
    let ontology_artifact = Artifact {
        id: ArtifactId::new("crisis-ontology", 1),
        kind: ArtifactKind::Ontology,
        body: vec![0; 6_000],
    };
    let medical_reg = sim.add_node(
        medical_lan,
        Box::new(
            RegistryNode::new(RegistryConfig::default(), Some(index.clone()))
                .with_artifact(ontology_artifact.clone()),
        ),
    );
    // Every agency registry hosts the shared ontology (distributed with the
    // deployment, like the paper's standardized upper-level ontologies).
    let fire_reg = sim.add_node(
        fire_lan,
        Box::new(
            RegistryNode::new(
                RegistryConfig { seeds: vec![medical_reg], ..Default::default() },
                Some(index.clone()),
            )
            .with_artifact(ontology_artifact.clone()),
        ),
    );
    let _police_reg = sim.add_node(
        police_lan,
        Box::new(
            RegistryNode::new(
                RegistryConfig { seeds: vec![medical_reg], ..Default::default() },
                Some(index.clone()),
            )
            .with_artifact(ontology_artifact),
        ),
    );

    // Agency services.
    let mut add_service = |lan, name: &str, category, outputs: &[_]| {
        let profile = ServiceProfile::new(name, category).with_outputs(outputs);
        sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Semantic(profile)],
                Some(index.clone()),
            )),
        )
    };
    add_service(medical_lan, "field-triage", c.triage, &[c.triage_report]);
    add_service(medical_lan, "ambulance-dispatch", c.ambulance_dispatch, &[]);
    add_service(fire_lan, "hazmat-team", c.hazmat, &[c.hazard_map]);
    add_service(fire_lan, "sar-drone", c.search_and_rescue, &[c.victim_location]);
    add_service(police_lan, "perimeter", c.perimeter_control, &[]);

    // The police commander's device.
    let commander = sim.add_node(police_lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(3));

    // 1. In-band ontology fetch (no WWW/DNS in the field).
    sim.with_node::<ClientNode>(commander, |cl, ctx| {
        cl.fetch_artifact(ctx, "crisis-ontology");
    });

    // 2. "Get me any medical service" — subsumption finds triage AND
    //    ambulance dispatch, across agency LANs.
    sim.with_node::<ClientNode>(commander, |cl, ctx| {
        cl.issue_query(
            ctx,
            QueryPayload::Semantic(ServiceRequest::for_category(c.medical)),
            QueryOptions::default(),
        );
    });
    sim.run_until(secs(8));

    let client = sim.handler::<ClientNode>(commander).unwrap();
    let fetched = &client.artifacts[0];
    assert!(fetched.found, "police registry hosts the shared ontology");
    println!("ontology fetched in-band: {} ({} bytes)", fetched.name, fetched.size);
    let medical_hits = &client.completed[0];
    println!("medical services discovered across agencies:");
    for hit in &medical_hits.hits {
        let Description::Semantic(p) = &hit.advert.description else { unreachable!() };
        println!("  {} ({:?} match) from {}", p.name, hit.degree, hit.advert.provider);
    }
    assert_eq!(medical_hits.hits.len(), 2);

    // 3. The fire registry vehicle is destroyed; its SAR drone must find a
    //    new connection point (over the WAN) and stay discoverable.
    println!("\n-- fire registry destroyed at t=8s --");
    sim.crash_node(fire_reg);
    sim.run_until(secs(60));
    sim.with_node::<ClientNode>(commander, |cl, ctx| {
        cl.issue_query(
            ctx,
            QueryPayload::Semantic(
                ServiceRequest::for_category(c.search_and_rescue),
            ),
            QueryOptions::default(),
        );
    });
    sim.run_until(secs(66));
    let client = sim.handler::<ClientNode>(commander).unwrap();
    let sar = &client.completed[1];
    println!("search-and-rescue still discoverable: {} hit(s)", sar.hits.len());
    assert_eq!(sar.hits.len(), 1, "SAR drone failed over to a surviving registry");
}
