//! Quickstart: one LAN, one registry, one semantic service, one client.
//!
//! Shows the whole public API surface in ~80 lines: build an ontology and
//! its subsumption index, stand up a simulated LAN, run a registry node,
//! publish an OWL-S-style profile from a service node, and discover it from
//! a client with a subsumption query ("any Sensor data will do").
//!
//! Run with: `cargo run -p semdisc-examples --bin quickstart`

use std::sync::Arc;

use sds_core::{ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig, ServiceNode};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_semantic::{Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::{secs, Sim, SimConfig, Topology};

fn main() {
    // 1. The shared semantic model: a tiny sensor taxonomy.
    let mut ontology = Ontology::new();
    let thing = ontology.class("Thing", &[]);
    let sensor_data = ontology.class("SensorData", &[thing]);
    let radar_data = ontology.class("RadarData", &[sensor_data]);
    let service = ontology.class("Service", &[thing]);
    let index = Arc::new(SubsumptionIndex::build(&ontology));

    // 2. A simulated world: one LAN.
    let mut topology = Topology::new();
    let lan = topology.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topology, 42);

    // 3. The three roles of the architecture.
    let _registry = sim.add_node(
        lan,
        Box::new(RegistryNode::new(RegistryConfig::default(), Some(index.clone()))),
    );
    let radar_profile = ServiceProfile::new("radar-feed", service).with_outputs(&[radar_data]);
    let _service = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(radar_profile)],
            Some(index.clone()),
        )),
    );
    let client = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));

    // 4. Let discovery and publishing happen (multicast probe, beacon,
    //    publish + lease), then query for the *parent* concept.
    sim.run_until(secs(1));
    sim.with_node::<ClientNode>(client, |c, ctx| {
        let request = ServiceRequest::default().with_outputs(&[sensor_data]);
        c.issue_query(ctx, QueryPayload::Semantic(request), QueryOptions::default());
    });
    sim.run_until(secs(5));

    // 5. Read the result: the RadarData producer matched by subsumption.
    let completed = &sim.handler::<ClientNode>(client).unwrap().completed[0];
    println!("query finished after {} ms (simulated)", completed.finished_at - completed.sent_at);
    for hit in &completed.hits {
        let Description::Semantic(profile) = &hit.advert.description else { unreachable!() };
        println!(
            "  hit: {:?} from provider {} — degree {:?} (asked for SensorData, got {})",
            profile.name,
            hit.advert.provider,
            hit.degree,
            ontology.name(profile.outputs[0]),
        );
    }
    assert_eq!(completed.hits.len(), 1, "the radar feed should be discovered");
    println!(
        "total traffic: {} messages, {} bytes",
        sim.stats().total_messages(),
        sim.stats().total_bytes()
    );
}
